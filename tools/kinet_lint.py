#!/usr/bin/env python3
"""kinet-lint — project-specific static invariants no off-the-shelf tool knows.

The KiNETGAN tree carries contracts that clang-tidy and -Wthread-safety
cannot express:

  nondet-api      The privacy/fidelity claims rest on bit-exact determinism
                  of every RNG-bearing path (replicas serve byte-identical
                  seeded draws fleet-wide).  Ambient-entropy and wall-clock
                  APIs are therefore banned in src/: all randomness flows
                  through kinet::Rng (seeded mt19937_64) and all timing
                  through steady_clock/Stopwatch.

  loop-blocking   The epoll loop thread (src/service/event_loop.cpp) owns
                  every connection; one blocking call stalls the whole
                  daemon.  Functions that run on the loop thread must not
                  sleep, join, wait on condition variables/futures, call
                  the blocking socket wrappers, or enter parallel_for.

  hot-path-alloc  forward_inference() and StreamCursor::next() are the
                  serving fast path: allocation-free and lock-free once
                  warm (PR 5/6 contract, docs/performance.md).  Direct
                  allocation (push_back/resize/reserve/new/make_*) and
                  locking are banned in their bodies; buffer reuse goes
                  through the approved *_into / resize_for_overwrite /
                  append_row_range APIs.

  raw-io          Raw ::read/::write/::send/::recv on sockets lose EINTR
                  and partial-transfer handling; everything goes through
                  the wrappers in src/service/socket.cpp (the one file
                  allowed to touch them).

  unbounded-count A wire- or snapshot-side element count must be bounded
                  (bytes::Reader::element_count or an explicit KINET_CHECK)
                  before it sizes a container — the PR 4 fuzz-bug class
                  (pre-allocation from attacker-controlled u64).

  tsa-escape      KINET_NO_THREAD_SAFETY_ANALYSIS is allowed only on
                  documented sites: the use must carry a nearby comment
                  justifying the lock-free protocol.

  failpoint-name  Every KINET_FAILPOINT site must name a string literal
                  registered in kRegisteredFailpoints (src/common/
                  failpoint.cpp) — a typo'd site could never be armed, so
                  the chaos suite would silently stop covering it.  The
                  registry itself is checked for staleness: a registered
                  name with no site left in src/ is also a finding.

Suppressions: a finding is waived by a comment on the same line or the
line above::

    // kinet-lint: allow(<rule>): <reason>

The reason is mandatory; a bare allow() is itself a finding.

Token-level on purpose: the tree builds with GCC where libclang may be
absent, and these invariants are lexically recognisable.  Comments and
string literals are stripped before matching, so prose never trips a rule.

Usage:
    tools/kinet_lint.py --ci          # lint the tree (src/), exit 1 on findings
    tools/kinet_lint.py --selftest    # run the fixture suite (tools/lint_fixtures/)
    tools/kinet_lint.py FILE...       # lint specific files
    tools/kinet_lint.py --list-rules
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# --------------------------------------------------------------------------
# Rule configuration
# --------------------------------------------------------------------------

# Functions of EventLoop that execute on the epoll loop thread.  worker_main
# runs on the worker pool and stop()/start() on the caller thread — those may
# block.  Keep in sync with src/service/event_loop.cpp (a name listed here
# that no longer exists is reported so the list cannot rot silently).
LOOP_THREAD_FUNCTIONS = [
    "loop_main",
    "handle_accepts",
    "handle_readable",
    "handle_writable",
    "process_input",
    "dispatch_request",
    "queue_output",
    "flush_writes",
    "schedule_stream_step",
    "drain_completions",
    "apply_completion",
    "destroy_connection",
    "reap_dead_connections",
    "update_interest",
    "try_enqueue_task",
    "enqueue_task_unbounded",
    "wake_loop",
]

NONDET_PATTERNS = [
    (re.compile(r"std\s*::\s*random_device"), "std::random_device (ambient entropy)"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"(?<![\w:])rand\s*\("), "rand()"),
    (re.compile(r"\b[dlm]rand48\s*\("), "*rand48()"),
    (re.compile(r"(?<![\w:])random\s*\("), "random()"),
    (re.compile(r"system_clock\s*::"), "system_clock (wall clock)"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"), "time()"),
    (re.compile(r"(?<![\w:])clock\s*\(\s*\)"), "clock()"),
]

BLOCKING_PATTERNS = [
    (re.compile(r"\bsleep_for\s*\("), "sleep"),
    (re.compile(r"\bsleep_until\s*\("), "sleep"),
    (re.compile(r"\busleep\s*\("), "sleep"),
    (re.compile(r"(?<![\w:])sleep\s*\("), "sleep"),
    (re.compile(r"\.\s*wait\s*\("), "condition/future wait"),
    (re.compile(r"\.\s*wait_for\s*\("), "condition/future wait"),
    (re.compile(r"\.\s*wait_until\s*\("), "condition/future wait"),
    (re.compile(r"\.\s*join\s*\("), "thread join"),
    (re.compile(r"\bsend_all\s*\("), "blocking socket write (send_all)"),
    (re.compile(r"\bread_exact\s*\("), "blocking socket read (read_exact)"),
    (re.compile(r"\bread_line\s*\("), "blocking socket read (read_line)"),
    (re.compile(r"\bparallel_for\s*\("), "parallel_for (blocks on the pool)"),
]

HOTPATH_PATTERNS = [
    (re.compile(r"(?<!\w)new\s+[A-Za-z_]"), "operator new"),
    (re.compile(r"\bmake_unique\s*<"), "make_unique"),
    (re.compile(r"\bmake_shared\s*<"), "make_shared"),
    (re.compile(r"\bmalloc\s*\("), "malloc"),
    (re.compile(r"\.\s*push_back\s*\("), "push_back"),
    (re.compile(r"\.\s*emplace_back\s*\("), "emplace_back"),
    (re.compile(r"\.\s*resize\s*\("), "resize"),
    (re.compile(r"\.\s*reserve\s*\("), "reserve"),
    (re.compile(r"\bMutexLock\b|\block_guard\b|\bunique_lock\b|\bscoped_lock\b"),
     "lock acquisition"),
    (re.compile(r"\.\s*lock\s*\(\s*\)"), "lock acquisition"),
]

RAW_IO_PATTERNS = [
    (re.compile(r"::\s*(read|write|send|recv|sendto|recvfrom|readv|writev)\s*\("),
     "raw socket syscall"),
]

READ_COUNT_RE = re.compile(r"\b(\w+)\s*=[^=].*?\bread_u(?:8|16|32|64)\s*\(")
ASSIGN_RE = re.compile(r"\b(\w+)\s*=(?!=)")
SIZING_RE = re.compile(r"\.\s*(?:resize|reserve)\s*\(\s*(\w+)")
BOUND_RE_TEMPLATE = r"(?:element_count\s*\([^)]*\b{ident}\b|KINET_CHECK\s*\([^;]*\b{ident}\b|\b{ident}\b\s*(?:<|<=|>|>=)|(?:<|<=|>|>=)\s*\b{ident}\b|std::min[^;]*\b{ident}\b)"

# Failpoint sites carry their name as a string literal, which the stripper
# blanks — this rule scans RAW lines, not code lines.
FAILPOINT_SITE_RE = re.compile(r'KINET_FAILPOINT\s*\(\s*"([^"]*)"\s*\)')
FAILPOINT_CALL_RE = re.compile(r"\bKINET_FAILPOINT\s*\(")
FAILPOINT_REGISTRY = REPO / "src" / "common" / "failpoint.cpp"

ALLOW_RE = re.compile(r"kinet-lint:\s*allow\(([\w-]+)\)\s*:\s*(\S.*?)\s*(?:\*/)?\s*$")
BARE_ALLOW_RE = re.compile(r"kinet-lint:\s*allow\(([\w-]+)\)")

RULES = {
    "nondet-api": "banned nondeterminism API in RNG-bearing code",
    "loop-blocking": "blocking call inside an event-loop-thread function",
    "hot-path-alloc": "allocation/locking in a serving fast-path function",
    "raw-io": "raw socket syscall outside the EINTR-safe wrappers",
    "unbounded-count": "wire-side count sizes a container without a bound",
    "tsa-escape": "undocumented KINET_NO_THREAD_SAFETY_ANALYSIS",
    "failpoint-name": "KINET_FAILPOINT site not in the central registry",
    "bad-allow": "kinet-lint allow() without a reason",
}


@dataclasses.dataclass
class Finding:
    path: pathlib.Path
    line: int  # 1-based
    rule: str
    message: str

    def render(self, ci: bool) -> str:
        rel = self.path
        try:
            rel = self.path.relative_to(REPO)
        except ValueError:
            pass
        if ci:
            return (f"::error file={rel},line={self.line},"
                    f"title=kinet-lint {self.rule}::{self.message}")
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Lexical preprocessing
# --------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> list[str]:
    """Returns code-only lines (comments/strings blanked, newlines kept)."""
    out: list[str] = []
    i, n = 0, len(text)
    buf: list[str] = []
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                # Raw strings: skip to the matching delimiter outright.
                if buf and buf[-1] == "R":
                    m = re.match(r'R"([^(\s]*)\(', text[i - 1:])
                    if m:
                        end = text.find(")" + m.group(1) + '"', i)
                        if end < 0:
                            break
                        skipped = text[i:end]
                        buf.extend("\n" * skipped.count("\n"))
                        i = end + len(m.group(1)) + 2
                        continue
                state = "string"
                buf.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                buf.append(" ")
                i += 1
                continue
            buf.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                buf.append("\n")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                buf.append("\n")
            i += 1
        else:  # string or char
            if c == "\\":
                i += 2
                continue
            if (state == "string" and c == '"') or (state == "char" and c == "'"):
                state = "code"
            elif c == "\n":
                buf.append("\n")  # unterminated; stay permissive
                state = "code"
            i += 1
    return "".join(buf).split("\n")


def collect_allows(raw_lines: list[str]) -> tuple[dict[int, set[str]], list[Finding]]:
    """Maps 0-based line -> waived rules (same line or the line below)."""
    allows: dict[int, set[str]] = {}
    bad: list[Finding] = []
    for idx, line in enumerate(raw_lines):
        m = ALLOW_RE.search(line)
        if not m:
            mb = BARE_ALLOW_RE.search(line)
            if mb:
                bad.append((idx, mb.group(1)))  # reason-less allow
            continue
        # The allow waives its own line and, when it stands alone, the next.
        allows.setdefault(idx, set()).add(m.group(1))
        stripped = line.strip()
        if stripped.startswith("//") or stripped.startswith("/*"):
            allows.setdefault(idx + 1, set()).add(m.group(1))
    return allows, bad


def find_function_bodies(code_lines: list[str], name_re: re.Pattern) -> list[tuple[int, int]]:
    """(start, end) 0-based line ranges of function bodies whose signature
    line matches name_re.  Brace-counted from the signature's opening `{`."""
    spans = []
    text = "\n".join(code_lines)
    for m in name_re.finditer(text):
        open_brace = text.find("{", m.end())
        # Give up if a `;` (declaration) appears before the brace.
        semi = text.find(";", m.end())
        if open_brace < 0 or (0 <= semi < open_brace):
            continue
        depth = 0
        end = open_brace
        for j in range(open_brace, len(text)):
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    end = j
                    break
        start_line = text.count("\n", 0, open_brace)
        end_line = text.count("\n", 0, end)
        spans.append((start_line, end_line))
    return spans


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

def scan_patterns(path, code_lines, patterns, rule, line_filter=None):
    findings = []
    for idx, line in enumerate(code_lines):
        if line_filter is not None and not line_filter(idx):
            continue
        for pattern, what in patterns:
            if pattern.search(line):
                findings.append(Finding(path, idx + 1, rule, f"{what} — {RULES[rule]}"))
                break
    return findings


def rule_nondet(path: pathlib.Path, code_lines: list[str]) -> list[Finding]:
    return scan_patterns(path, code_lines, NONDET_PATTERNS, "nondet-api")


def rule_loop_blocking(path: pathlib.Path, code_lines: list[str]) -> list[Finding]:
    if path.name != "event_loop.cpp":
        return []
    findings: list[Finding] = []
    text = "\n".join(code_lines)
    in_tree = "src" in path.parts  # fixtures carry a partial function set
    spans: list[tuple[int, int]] = []
    for fn in LOOP_THREAD_FUNCTIONS:
        sig = re.compile(r"EventLoop\s*::\s*" + re.escape(fn) + r"\s*\(")
        fn_spans = find_function_bodies(code_lines, sig)
        if in_tree and not fn_spans and sig.search(text) is None:
            findings.append(Finding(
                path, 1, "loop-blocking",
                f"loop-thread function list is stale: EventLoop::{fn} not found "
                "(update LOOP_THREAD_FUNCTIONS in tools/kinet_lint.py)"))
        spans.extend(fn_spans)

    def on_loop_thread(idx: int) -> bool:
        return any(s <= idx <= e for s, e in spans)

    findings.extend(scan_patterns(path, code_lines, BLOCKING_PATTERNS,
                                  "loop-blocking", on_loop_thread))
    return findings


def rule_hot_path(path: pathlib.Path, code_lines: list[str]) -> list[Finding]:
    sig = re.compile(
        r"\w+\s*::\s*forward_inference\s*\(|StreamCursor\s*::\s*\w+\s*\(")
    spans = find_function_bodies(code_lines, sig)
    if not spans:
        return []

    def in_hot_path(idx: int) -> bool:
        return any(s <= idx <= e for s, e in spans)

    return scan_patterns(path, code_lines, HOTPATH_PATTERNS, "hot-path-alloc",
                         in_hot_path)


def rule_raw_io(path: pathlib.Path, code_lines: list[str]) -> list[Finding]:
    if "service" not in path.parts or path.name == "socket.cpp":
        return []
    return scan_patterns(path, code_lines, RAW_IO_PATTERNS, "raw-io")


def rule_unbounded_count(path: pathlib.Path, code_lines: list[str]) -> list[Finding]:
    findings = []
    # Identifier -> line it was assigned from a raw wire read.
    tainted: dict[str, int] = {}
    for idx, line in enumerate(code_lines):
        reads = {m.group(1) for m in READ_COUNT_RE.finditer(line)}
        # Reassignment from any non-wire source (element_count(), a literal,
        # a clamped copy) clears the taint — counts stay tainted only while
        # they still hold the raw wire value.
        for m in ASSIGN_RE.finditer(line):
            if m.group(1) not in reads:
                tainted.pop(m.group(1), None)
        for ident in reads:
            tainted[ident] = idx
        for m in SIZING_RE.finditer(line):
            ident = m.group(1)
            if ident in tainted:
                findings.append(Finding(
                    path, idx + 1, "unbounded-count",
                    f"container sized from wire count `{ident}` (read at line "
                    f"{tainted[ident] + 1}) without element_count()/KINET_CHECK bound"))
        # A bound check anywhere after the read clears the taint.
        for ident in list(tainted):
            if idx > tainted[ident] and re.search(
                    BOUND_RE_TEMPLATE.format(ident=re.escape(ident)), line):
                del tainted[ident]
    return findings


def rule_tsa_escape(path: pathlib.Path, code_lines: list[str],
                    raw_lines: list[str]) -> list[Finding]:
    if path.name == "thread_annotations.hpp":
        return []  # the definition site
    findings = []
    for idx, line in enumerate(code_lines):
        if "KINET_NO_THREAD_SAFETY_ANALYSIS" not in line:
            continue
        context = "\n".join(raw_lines[max(0, idx - 4):idx + 1]).lower()
        if "justif" not in context and "documented" not in context:
            findings.append(Finding(
                path, idx + 1, "tsa-escape",
                "KINET_NO_THREAD_SAFETY_ANALYSIS without a nearby comment "
                "justifying the lock-free protocol"))
    return findings


_REGISTERED_FAILPOINTS: set[str] | None = None


def registered_failpoints() -> set[str]:
    """Names declared in kRegisteredFailpoints (src/common/failpoint.cpp)."""
    global _REGISTERED_FAILPOINTS
    if _REGISTERED_FAILPOINTS is None:
        names: set[str] = set()
        if FAILPOINT_REGISTRY.is_file():
            text = FAILPOINT_REGISTRY.read_text(encoding="utf-8", errors="replace")
            m = re.search(r"kRegisteredFailpoints\s*\[\]\s*=\s*\{(.*?)\}", text,
                          re.DOTALL)
            if m:
                names = set(re.findall(r'"([^"]+)"', m.group(1)))
        _REGISTERED_FAILPOINTS = names
    return _REGISTERED_FAILPOINTS


def rule_failpoint_name(path: pathlib.Path, raw_lines: list[str]) -> list[Finding]:
    registry = registered_failpoints()
    if not registry:
        return [Finding(path, 1, "failpoint-name",
                        f"cannot parse kRegisteredFailpoints from {FAILPOINT_REGISTRY}")]
    findings: list[Finding] = []
    for idx, line in enumerate(raw_lines):
        literals = FAILPOINT_SITE_RE.findall(line)
        for name in literals:
            if name not in registry:
                findings.append(Finding(
                    path, idx + 1, "failpoint-name",
                    f'failpoint "{name}" is not in kRegisteredFailpoints '
                    "(src/common/failpoint.cpp) — it can never be armed"))
        # A site whose argument is not a plain string literal defeats both
        # this check and configure()'s name validation.
        if len(FAILPOINT_CALL_RE.findall(line)) > len(literals) and \
                "define KINET_FAILPOINT" not in line:
            findings.append(Finding(
                path, idx + 1, "failpoint-name",
                "KINET_FAILPOINT argument must be a string literal so the "
                "registry check can see it"))

    # Staleness sweep, anchored to the registry file so it runs exactly once
    # per tree lint: a registered name no site uses is dead chaos coverage.
    if path.resolve() == FAILPOINT_REGISTRY:
        used: set[str] = set()
        for source in sorted((REPO / "src").rglob("*.cpp")):
            if source.resolve() == FAILPOINT_REGISTRY:
                continue
            for m in FAILPOINT_SITE_RE.finditer(
                    source.read_text(encoding="utf-8", errors="replace")):
                used.add(m.group(1))
        for name in sorted(registry - used):
            findings.append(Finding(
                path, 1, "failpoint-name",
                f'registered failpoint "{name}" has no KINET_FAILPOINT site '
                "left in src/ — remove it or restore the site"))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def lint_file(path: pathlib.Path, rules: set[str]) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.split("\n")
    code_lines = strip_comments_and_strings(raw)
    # Keep line counts aligned; the stripper preserves newlines.
    while len(code_lines) < len(raw_lines):
        code_lines.append("")

    allows, bad_allows = collect_allows(raw_lines)
    findings: list[Finding] = [
        Finding(path, idx + 1, "bad-allow",
                f"allow({rule}) must carry a reason: `// kinet-lint: allow({rule}): <why>`")
        for idx, rule in bad_allows
    ]

    if "nondet-api" in rules:
        findings += rule_nondet(path, code_lines)
    if "loop-blocking" in rules:
        findings += rule_loop_blocking(path, code_lines)
    if "hot-path-alloc" in rules:
        findings += rule_hot_path(path, code_lines)
    if "raw-io" in rules:
        findings += rule_raw_io(path, code_lines)
    if "unbounded-count" in rules:
        findings += rule_unbounded_count(path, code_lines)
    if "tsa-escape" in rules:
        findings += rule_tsa_escape(path, code_lines, raw_lines)
    if "failpoint-name" in rules:
        findings += rule_failpoint_name(path, raw_lines)

    return [f for f in findings
            if f.rule == "bad-allow" or f.rule not in allows.get(f.line - 1, set())]


def default_tree() -> list[pathlib.Path]:
    return sorted((REPO / "src").rglob("*.cpp")) + sorted((REPO / "src").rglob("*.hpp"))


def run_selftest() -> int:
    fixtures = REPO / "tools" / "lint_fixtures"
    bad_dir, clean_dir = fixtures / "bad", fixtures / "clean"
    failures = 0
    expect_re = re.compile(r"//\s*LINT-EXPECT:\s*([\w-]+(?:\s*,\s*[\w-]+)*)")

    def fixture_files(root: pathlib.Path) -> list[pathlib.Path]:
        return sorted(list(root.rglob("*.cc")) + list(root.rglob("*.cpp")))

    for path in fixture_files(bad_dir):
        raw_lines = path.read_text().split("\n")
        expected: dict[int, set[str]] = {}
        for idx, line in enumerate(raw_lines):
            m = expect_re.search(line)
            if m:
                expected[idx + 1] = {r.strip() for r in m.group(1).split(",")}
        got: dict[int, set[str]] = {}
        for f in lint_file(path, set(RULES)):
            got.setdefault(f.line, set()).add(f.rule)
        if got != expected:
            failures += 1
            print(f"SELFTEST FAIL {path.name}:")
            for line in sorted(set(expected) | set(got)):
                want, have = expected.get(line, set()), got.get(line, set())
                if want != have:
                    print(f"  line {line}: expected {sorted(want)}, got {sorted(have)}")

    for path in fixture_files(clean_dir):
        hits = lint_file(path, set(RULES))
        if hits:
            failures += 1
            print(f"SELFTEST FAIL {path.name}: expected clean, got:")
            for f in hits:
                print(f"  {f.render(ci=False)}")

    total = len(fixture_files(bad_dir)) + len(fixture_files(clean_dir))
    if total == 0:
        print("SELFTEST FAIL: no fixtures found")
        return 1
    if failures:
        print(f"selftest: {failures}/{total} fixture(s) failed")
        return 1
    print(f"selftest: {total} fixture(s) OK")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("paths", nargs="*", help="files to lint (default: src/ tree)")
    parser.add_argument("--ci", action="store_true",
                        help="GitHub annotation output; implies the full tree")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture suite and exit")
    parser.add_argument("--rules", default=",".join(r for r in RULES if r != "bad-allow"),
                        help="comma-separated rule subset")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:16} {desc}")
        return 0
    if args.selftest:
        return run_selftest()

    rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    unknown = rules - set(RULES)
    if unknown:
        print(f"unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    paths = [pathlib.Path(p) for p in args.paths] if args.paths else default_tree()
    findings: list[Finding] = []
    for path in paths:
        if not path.is_file():
            print(f"kinet-lint: no such file: {path}", file=sys.stderr)
            return 2
        findings.extend(lint_file(path, rules))

    for f in findings:
        print(f.render(args.ci))
    if findings:
        print(f"kinet-lint: {len(findings)} finding(s) in {len(paths)} file(s)",
              file=sys.stderr)
        return 1
    print(f"kinet-lint: clean ({len(paths)} file(s), rules: {', '.join(sorted(rules))})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
