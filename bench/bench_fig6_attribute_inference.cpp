// Reproduces Figure 6: attribute-inference attack on synthetic releases of
// the lab data — the adversary predicts the source device from flow
// statistics using only the synthetic data.
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "src/common/stopwatch.hpp"
#include "src/common/text.hpp"
#include "src/eval/privacy/attribute_inference.hpp"

namespace {

using namespace kinet;        // NOLINT
using namespace kinet::bench; // NOLINT

// Paper (Fig. 6): attribute-inference attack accuracy (lower = safer).
const std::map<std::string, double> kPaper = {
    {"CTGAN", 0.42},    {"OCTGAN", 0.38}, {"PATEGAN", 0.35},
    {"TABLEGAN", 0.45}, {"TVAE", 0.41},   {"KiNETGAN", 0.30},
};

}  // namespace

int main() {
    std::cout << "=== Figure 6: Attribute Inference attack (lab data) ===\n";
    std::cout << "(k-NN on synthetic predicts src_device of real rows from flow statistics;\n"
                 " lower is better; paper values in parentheses)\n\n";

    const DatasetBundle lab = make_lab_dataset();
    const std::size_t sensitive = lab.train.column_index("src_device");
    const double chance =
        1.0 / static_cast<double>(lab.train.meta(sensitive).categories.size());

    const std::vector<std::size_t> widths = {10, 22};
    print_row({"Model", "Attack accuracy"}, widths);
    print_rule(40);

    for (const auto& name : model_names()) {
        Stopwatch watch;
        auto model = make_model(name, lab);
        model->fit(lab.train);
        const auto synth = model->sample(lab.train.rows());

        eval::AttributeInferenceOptions opts;
        opts.qi_columns = lab.continuous_columns;
        opts.sensitive_column = sensitive;
        opts.max_targets = 800;
        const double acc = eval::attribute_inference_attack(lab.train, synth, opts);
        print_row({name, text::format_double(acc, 3) + " (" +
                             text::format_double(kPaper.at(name), 2) + ")"},
                  widths);
        std::cerr << "[fig6] " << name << " done in " << text::format_double(watch.seconds(), 1)
                  << "s\n";
    }

    print_rule(40);
    std::cout << "\nRandom-guess floor: " << text::format_double(chance, 3)
              << ".  Shape check: KiNETGAN lowest among the models.\n";
    return 0;
}
