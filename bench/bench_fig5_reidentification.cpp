// Reproduces Figure 5: re-identification attack accuracy with 30/60/90 %
// adversary overlap on the original (lab) data.
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "src/common/stopwatch.hpp"
#include "src/common/text.hpp"
#include "src/eval/privacy/reidentification.hpp"

namespace {

using namespace kinet;        // NOLINT
using namespace kinet::bench; // NOLINT

// Paper (Fig. 5): attack accuracy at 30/60/90 % overlap (lower = safer).
const std::map<std::string, std::array<double, 3>> kPaper = {
    {"CTGAN",    {0.45, 0.70, 0.93}}, {"OCTGAN",   {0.40, 0.68, 0.92}},
    {"PATEGAN",  {0.35, 0.64, 0.90}}, {"TABLEGAN", {0.48, 0.72, 0.94}},
    {"TVAE",     {0.44, 0.70, 0.93}}, {"KiNETGAN", {0.33, 0.62, 0.88}},
};

}  // namespace

int main() {
    std::cout << "=== Figure 5: Re-identification attack (lab data) ===\n";
    std::cout << "(attack accuracy at 30/60/90% adversary overlap; lower is better;\n"
                 " paper values in parentheses)\n\n";

    const DatasetBundle lab = make_lab_dataset();
    const std::vector<std::size_t> widths = {10, 18, 18, 18};
    print_row({"Model", "30% overlap", "60% overlap", "90% overlap"}, widths);
    print_rule(72);

    for (const auto& name : model_names()) {
        Stopwatch watch;
        auto model = make_model(name, lab);
        model->fit(lab.train);
        const auto synth = model->sample(lab.train.rows());

        std::vector<std::string> row = {name};
        const std::array<double, 3> overlaps = {0.3, 0.6, 0.9};
        for (std::size_t i = 0; i < overlaps.size(); ++i) {
            eval::ReidentificationOptions opts;
            opts.known_fraction = overlaps[i];
            opts.qi_columns = lab.continuous_columns;
            opts.max_targets = 800;
            const double acc = eval::reidentification_attack(lab.train, synth, opts);
            row.push_back(text::format_double(acc, 3) + " (" +
                          text::format_double(kPaper.at(name)[i], 2) + ")");
        }
        print_row(row, widths);
        std::cerr << "[fig5] " << name << " done in " << text::format_double(watch.seconds(), 1)
                  << "s\n";
    }

    print_rule(72);
    std::cout << "\nShape check: accuracy grows with overlap for every model (the adversary\n"
                 "already holds that fraction); KiNETGAN lowest at each overlap level.\n";
    return 0;
}
