// Reproduces Figure 4: NIDS classifier accuracy on UNSW-NB15 (TSTR).
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "src/common/stopwatch.hpp"
#include "src/common/text.hpp"
#include "src/eval/tstr.hpp"

namespace {

using namespace kinet;        // NOLINT
using namespace kinet::bench; // NOLINT

// Paper (Fig. 4): average NIDS accuracy on UNSW-NB15.
const std::map<std::string, double> kPaperAverage = {
    {"Baseline", 0.84}, {"CTGAN", 0.72},    {"OCTGAN", 0.58}, {"PATEGAN", 0.62},
    {"TABLEGAN", 0.66}, {"TVAE", 0.73},     {"KiNETGAN", 0.78},
};

}  // namespace

int main() {
    std::cout << "=== Figure 4: NIDS accuracy, UNSW-NB15 ===\n";
    std::cout << "(classifiers trained on synthetic, tested on real; paper averages in "
                 "parentheses)\n\n";

    const DatasetBundle unsw = make_unsw_dataset();
    const std::vector<std::size_t> widths = {10, 8, 8, 8, 8, 8, 8, 16};
    print_row({"Model", "DT", "RF", "LogReg", "KNN", "NB", "MLP", "Average"}, widths);
    print_rule(90);

    auto report = [&widths](const std::string& name, const std::vector<eval::TstrResult>& res) {
        std::vector<std::string> row = {name};
        for (const auto& r : res) {
            row.push_back(text::format_double(r.accuracy, 3));
        }
        row.push_back(text::format_double(eval::average_accuracy(res), 3) + " (" +
                      text::format_double(kPaperAverage.at(name), 2) + ")");
        print_row(row, widths);
    };

    report("Baseline", eval::evaluate_tstr(unsw.train, unsw.test, unsw.label_column));

    for (const auto& name : model_names()) {
        Stopwatch watch;
        auto model = make_model(name, unsw);
        model->fit(unsw.train);
        const auto synth = model->sample(unsw.train.rows());
        report(name, eval::evaluate_tstr(synth, unsw.test, unsw.label_column));
        std::cerr << "[fig4] " << name << " done in " << text::format_double(watch.seconds(), 1)
                  << "s\n";
    }

    print_rule(90);
    std::cout << "\nShape check: Baseline highest; KiNETGAN best among synthetic trainers.\n";
    return 0;
}
