// Micro-benchmarks of the core kernels (google-benchmark): matmul, one GAN
// training step, KG oracle compilation + queries, transformer encode, and
// the conditional sampler.  These justify the bench-scale configurations and
// document where the training time goes.
//
// `--json FILE` writes the machine-readable google-benchmark JSON report to
// FILE (shorthand for --benchmark_out=FILE --benchmark_out_format=json); CI
// uploads it as the perf-regression artifact.  All other flags pass through
// to google-benchmark.
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/kinetgan.hpp"
#include "src/data/sampler.hpp"
#include "src/data/transformer.hpp"
#include "src/kg/network_kg.hpp"
#include "src/netsim/lab_simulator.hpp"
#include "src/netsim/unsw_synthesizer.hpp"
#include "src/nn/nn.hpp"
#include "src/service/client.hpp"
#include "src/service/server.hpp"
#include "src/service/snapshot.hpp"
#include "src/service/socket.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/ops.hpp"

namespace {

using namespace kinet;  // NOLINT
using tensor::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
    Matrix m(r, c);
    for (auto& v : m.data()) {
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    return m;
}

void BM_Matmul(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    const Matrix a = random_matrix(n, n, rng);
    const Matrix b = random_matrix(n, n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tensor::matmul(a, b));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->UseRealTime();

// The transposed-operand kernels read A (resp. B) with a column stride;
// packing should make them track plain matmul closely.
void BM_MatmulTN(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(21);
    const Matrix a = random_matrix(n, n, rng);
    const Matrix b = random_matrix(n, n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tensor::matmul_tn(a, b));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_MatmulTN)->Arg(256)->UseRealTime();

void BM_MatmulNT(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(22);
    const Matrix a = random_matrix(n, n, rng);
    const Matrix b = random_matrix(n, n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tensor::matmul_nt(a, b));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_MatmulNT)->Arg(256)->UseRealTime();

// The Linear-layer hot path: GEMM with the bias row fused into the
// epilogue, at a GAN-step-like rectangular shape.
void BM_MatmulBias(benchmark::State& state) {
    Rng rng(23);
    const Matrix a = random_matrix(256, 96, rng);
    const Matrix b = random_matrix(96, 256, rng);
    const Matrix bias = random_matrix(1, 256, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tensor::matmul_bias(a, b, bias));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * 256 * 96 * 256));
}
BENCHMARK(BM_MatmulBias);

// The inference fast path's GEMM: B packed once, reused every call.  The
// delta against BM_MatmulBias (same shape, per-call packing) is the
// packing overhead the serving path no longer pays.
void BM_MatmulPacked(benchmark::State& state) {
    Rng rng(25);
    const Matrix a = random_matrix(256, 96, rng);
    const Matrix b = random_matrix(96, 256, rng);
    const Matrix bias = random_matrix(1, 256, rng);
    const tensor::PackedGemmB packed = tensor::pack_gemm_b(b);
    Matrix out;
    for (auto _ : state) {
        tensor::matmul_packed_bias_into(a, packed, bias, out);
        benchmark::DoNotOptimize(out.data().data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * 256 * 96 * 256));
}
BENCHMARK(BM_MatmulPacked);

void BM_MatmulPacked512(benchmark::State& state) {
    Rng rng(26);
    const Matrix a = random_matrix(512, 512, rng);
    const Matrix b = random_matrix(512, 512, rng);
    const tensor::PackedGemmB packed = tensor::pack_gemm_b(b);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tensor::matmul_packed(a, packed));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2ULL * 512 * 512 * 512));
}
BENCHMARK(BM_MatmulPacked512)->UseRealTime();

// Tall-skinny products (the discriminator head is n == 1): n < NR takes
// the no-pad path instead of zero-padding every strip to the register
// width.
void BM_MatmulTallSkinny(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(27);
    const Matrix a = random_matrix(512, 128, rng);
    const Matrix b = random_matrix(128, n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tensor::matmul(a, b));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * 512 * 128 * n));
}
BENCHMARK(BM_MatmulTallSkinny)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

void BM_Transpose(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(24);
    const Matrix a = random_matrix(n, n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tensor::transpose(a));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_Transpose)->Arg(1024);

void BM_MlpForwardBackward(benchmark::State& state) {
    Rng rng(2);
    nn::Sequential net;
    net.emplace<nn::Linear>(96, 128, rng);
    net.emplace<nn::BatchNorm1d>(128);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Linear>(128, 128, rng);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Linear>(128, 64, rng);
    const Matrix x = random_matrix(128, 96, rng);
    const Matrix g = random_matrix(128, 64, rng);
    for (auto _ : state) {
        net.zero_grad();
        benchmark::DoNotOptimize(net.forward(x, true));
        benchmark::DoNotOptimize(net.backward(g));
    }
}
BENCHMARK(BM_MlpForwardBackward);

void BM_KgBuildAndCompileOracle(benchmark::State& state) {
    for (auto _ : state) {
        const auto kg = kg::NetworkKg::build_lab();
        benchmark::DoNotOptimize(kg.make_oracle());
    }
}
BENCHMARK(BM_KgBuildAndCompileOracle);

void BM_KgOracleQuery(benchmark::State& state) {
    const auto kg = kg::NetworkKg::build_lab();
    const auto oracle = kg.make_oracle();
    const std::vector<std::string> valid = {"camera", "UDP", "DNS", "53", "dns_query"};
    const std::vector<std::string> invalid = {"camera", "UDP", "DNS", "443", "dns_query"};
    for (auto _ : state) {
        benchmark::DoNotOptimize(oracle.is_valid(valid));
        benchmark::DoNotOptimize(oracle.is_valid(invalid));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_KgOracleQuery);

void BM_TransformerEncode(benchmark::State& state) {
    netsim::LabSimOptions opts;
    opts.records = 2000;
    const auto table = netsim::LabTrafficSimulator(opts).generate();
    Rng rng(3);
    data::TableTransformer tf;
    tf.fit(table, data::TransformerOptions{}, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tf.transform(table, rng));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(table.rows()));
}
BENCHMARK(BM_TransformerEncode);

void BM_ConditionalSamplerDraw(benchmark::State& state) {
    netsim::LabSimOptions opts;
    opts.records = 4000;
    const auto table = netsim::LabTrafficSimulator(opts).generate();
    const data::ConditionalSampler sampler(table, netsim::lab_conditional_columns());
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sampler.draw(rng));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ConditionalSamplerDraw);

// ------------------------------------------------- serving throughput

/// One trained model per paper domain, fitted once for the whole binary.
core::KiNetGan& sample_bench_model(bool unsw) {
    static const auto make = [](bool u) {
        core::KiNetGanOptions opts;
        opts.gan.epochs = 4;
        opts.gan.seed = 7;
        opts.transformer.max_modes = 3;
        data::Table table;
        if (u) {
            netsim::UnswOptions sim;
            sim.records = 1200;
            sim.seed = 11;
            table = netsim::UnswNb15Synthesizer(sim).generate();
        } else {
            netsim::LabSimOptions sim;
            sim.records = 1200;
            sim.seed = 11;
            table = netsim::LabTrafficSimulator(sim).generate();
        }
        const auto kg = u ? kg::NetworkKg::build_unsw() : kg::NetworkKg::build_lab();
        auto model = std::make_unique<core::KiNetGan>(
            kg.make_oracle(),
            u ? netsim::unsw_conditional_columns() : netsim::lab_conditional_columns(), opts);
        model->fit(table);
        return model;
    };
    static const std::unique_ptr<core::KiNetGan> lab = make(false);
    static const std::unique_ptr<core::KiNetGan> unsw_model = make(true);
    return unsw ? *unsw_model : *lab;
}

// Rows/s of the serving path (sample_seeded on the inference fast path).
// Thread count is the process-wide pool (KINET_NUM_THREADS); run once with
// KINET_NUM_THREADS=1 and once at the machine default for the scaling
// table in docs/performance.md.
void BM_SampleThroughput(benchmark::State& state) {
    const bool unsw = state.range(0) != 0;
    const auto& model = sample_bench_model(unsw);
    constexpr std::size_t kRows = 4096;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.sample_seeded(kRows, seed++));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kRows));
    state.SetLabel(unsw ? "unsw" : "lab");
}
BENCHMARK(BM_SampleThroughput)->Arg(0)->Arg(1)->UseRealTime();

// The same rows through the streaming sink (chunked, O(chunk) memory) —
// the SAMPLE stream=1 serving loop minus the socket.
void BM_SampleThroughputStreaming(benchmark::State& state) {
    const auto& model = sample_bench_model(false);
    constexpr std::size_t kRows = 4096;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        std::size_t rows = 0;
        model.sample_seeded_stream(kRows, seed++, 1024,
                                   [&rows](const data::Table& chunk) { rows += chunk.rows(); });
        benchmark::DoNotOptimize(rows);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kRows));
}
BENCHMARK(BM_SampleThroughputStreaming)->UseRealTime();

// End-to-end rows/s through a live server while Arg(0) idle connections sit
// parked on the epoll loop.  Flat numbers across the arg column are the
// event-driven core's selling point: parked sockets cost one epoll
// registration, not a thread.  The label carries the server-side SAMPLE p99
// from the STATS surface.
void BM_ServerConnections(benchmark::State& state) {
    const auto idle_target = static_cast<std::size_t>(state.range(0));

    // Parked sockets need fds beyond the conservative default soft limit.
    rlimit lim{};
    if (::getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < idle_target + 512 &&
        lim.rlim_cur < lim.rlim_max) {
        rlimit want = lim;
        want.rlim_cur = std::min<rlim_t>(lim.rlim_max, idle_target + 512);
        ::setrlimit(RLIMIT_NOFILE, &want);
        ::getrlimit(RLIMIT_NOFILE, &lim);
    }

    service::ServerOptions opts;
    opts.port = 0;  // ephemeral
    opts.max_connections = idle_target + 64;
    service::SynthServer server(opts);
    server.registry().put("bench",
                          service::read_snapshot(service::write_snapshot(sample_bench_model(false))));
    server.start();

    std::vector<service::TcpStream> parked;
    parked.reserve(idle_target);
    const std::size_t park_cap =
        lim.rlim_cur > 256 ? static_cast<std::size_t>(lim.rlim_cur) - 256 : 0;
    for (std::size_t i = 0; i < idle_target && parked.size() < park_cap; ++i) {
        parked.push_back(service::TcpStream::connect("127.0.0.1", server.port()));
    }

    auto client = service::SynthClient::connect("127.0.0.1", server.port());
    constexpr std::size_t kRows = 4096;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        const std::uint64_t rows = client.sample_stream(
            "bench", kRows, seed++, [](const std::string& /*chunk*/) {}, 512);
        benchmark::DoNotOptimize(rows);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kRows));

    // Surface the server-side SAMPLE p99 alongside the idle-connection count.
    std::string p99 = "n/a";
    {
        service::Request request;
        request.op = service::Op::stats;
        const std::string payload = client.rpc(request).payload;
        const std::size_t at = payload.find("op_SAMPLE ");
        if (at != std::string::npos) {
            const std::size_t p = payload.find("p99_us=", at);
            if (p != std::string::npos) {
                const std::size_t end = payload.find_first_of(" \n", p);
                p99 = payload.substr(p + 7, end - (p + 7));
            }
        }
    }
    state.SetLabel("idle=" + std::to_string(parked.size()) + " p99_us=" + p99);

    client.quit();
    parked.clear();
    server.stop();
}
BENCHMARK(BM_ServerConnections)->Arg(0)->Arg(256)->Arg(1024)->UseRealTime();

// Rows/s of a framed SAMPLE through a 2-node fleet.  Arg(0) asks the owner
// directly (the forwarding-free baseline); Arg(1) asks the non-owner, which
// proxies the request to the owner over its pooled peer connection and
// relays the bytes.  The delta is the cluster hop's full cost: one extra
// request parse, one peer RPC, one payload copy.
void BM_ClusterForward(benchmark::State& state) {
    const bool forwarded = state.range(0) != 0;

    service::SynthServer owner_node;
    service::SynthServer edge_node;
    owner_node.start();
    edge_node.start();
    const std::vector<service::PeerAddress> addrs = {
        {"127.0.0.1", owner_node.port()}, {"127.0.0.1", edge_node.port()}};
    for (std::size_t i = 0; i < 2; ++i) {
        service::ClusterConfig cfg;
        cfg.self = addrs[i];
        cfg.peers.push_back(addrs[1 - i]);
        cfg.probe_interval_ms = 1000;
        (i == 0 ? owner_node : edge_node).enable_cluster(cfg);
    }
    // A model name the ring places on owner_node (ports are ephemeral, so
    // the name is found, not fixed), registered there only.
    std::string model;
    for (int i = 0; i < 4096 && model.empty(); ++i) {
        const std::string candidate = "bench-fwd-" + std::to_string(i);
        if (owner_node.cluster()->owns(candidate)) {
            model = candidate;
        }
    }
    owner_node.registry().put(
        model, service::read_snapshot(service::write_snapshot(sample_bench_model(false))));

    auto client = service::SynthClient::connect(
        "127.0.0.1", forwarded ? edge_node.port() : owner_node.port());
    constexpr std::size_t kRows = 512;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(client.sample_csv(model, kRows, seed++));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kRows));
    state.SetLabel(forwarded ? "forwarded" : "owner-direct");

    client.quit();
    edge_node.stop();
    owner_node.stop();
}
BENCHMARK(BM_ClusterForward)->Arg(0)->Arg(1)->UseRealTime();

void BM_RebalanceHandoff(benchmark::State& state) {
    // One epoch-change rebalance round that pulls a single snapshot to the
    // node that just became its owner — the per-model price of a
    // membership change.
    service::SynthServer source_node;
    service::SynthServer new_owner;
    source_node.start();
    new_owner.start();
    const std::vector<service::PeerAddress> addrs = {
        {"127.0.0.1", source_node.port()}, {"127.0.0.1", new_owner.port()}};
    for (std::size_t i = 0; i < 2; ++i) {
        service::ClusterConfig cfg;
        cfg.self = addrs[i];
        cfg.peers.push_back(addrs[1 - i]);
        cfg.probe_interval_ms = 1000;
        cfg.anti_entropy_interval_ms = 0;  // only the timed rounds move data
        (i == 0 ? source_node : new_owner).enable_cluster(cfg);
    }
    // A model the ring places on new_owner, seeded only on source_node —
    // exactly the state an epoch bump leaves behind mid-rebalance.
    std::string model;
    for (int i = 0; i < 4096 && model.empty(); ++i) {
        const std::string candidate = "bench-move-" + std::to_string(i);
        if (new_owner.cluster()->owns(candidate)) {
            model = candidate;
        }
    }
    source_node.registry().put(
        model, service::read_snapshot(service::write_snapshot(sample_bench_model(false))));

    std::size_t moved = 0;
    for (auto _ : state) {
        moved += new_owner.rebalance_now();
        state.PauseTiming();
        new_owner.registry().erase(model);  // re-arm the move for the next round
        state.ResumeTiming();
    }
    benchmark::DoNotOptimize(moved);
    state.SetItemsProcessed(static_cast<std::int64_t>(moved));
    state.SetLabel("snapshots-per-round=1");

    new_owner.stop();
    source_node.stop();
}
BENCHMARK(BM_RebalanceHandoff)->UseRealTime();

void BM_LabSimulator1k(benchmark::State& state) {
    for (auto _ : state) {
        netsim::LabSimOptions opts;
        opts.records = 1000;
        benchmark::DoNotOptimize(netsim::LabTrafficSimulator(opts).generate());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_LabSimulator1k);

}  // namespace

int main(int argc, char** argv) {
    // Expand --json FILE / --json=FILE before handing the argv to
    // google-benchmark; storage must outlive Initialize().
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc) + 1);
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string file;
        if (arg == "--json" && i + 1 < argc) {
            file = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            file = arg.substr(7);
        } else {
            args.push_back(arg);
            continue;
        }
        args.push_back("--benchmark_out=" + file);
        args.push_back("--benchmark_out_format=json");
    }
    std::vector<char*> cargs;
    cargs.reserve(args.size());
    for (auto& arg : args) {
        cargs.push_back(arg.data());
    }
    int cargc = static_cast<int>(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
