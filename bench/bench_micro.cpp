// Micro-benchmarks of the core kernels (google-benchmark): matmul, one GAN
// training step, KG oracle compilation + queries, transformer encode, and
// the conditional sampler.  These justify the bench-scale configurations and
// document where the training time goes.
#include <benchmark/benchmark.h>

#include "src/common/rng.hpp"
#include "src/data/sampler.hpp"
#include "src/data/transformer.hpp"
#include "src/kg/network_kg.hpp"
#include "src/netsim/lab_simulator.hpp"
#include "src/nn/nn.hpp"
#include "src/tensor/ops.hpp"

namespace {

using namespace kinet;  // NOLINT
using tensor::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
    Matrix m(r, c);
    for (auto& v : m.data()) {
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    return m;
}

void BM_Matmul(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    const Matrix a = random_matrix(n, n, rng);
    const Matrix b = random_matrix(n, n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tensor::matmul(a, b));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->UseRealTime();

void BM_MlpForwardBackward(benchmark::State& state) {
    Rng rng(2);
    nn::Sequential net;
    net.emplace<nn::Linear>(96, 128, rng);
    net.emplace<nn::BatchNorm1d>(128);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Linear>(128, 128, rng);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Linear>(128, 64, rng);
    const Matrix x = random_matrix(128, 96, rng);
    const Matrix g = random_matrix(128, 64, rng);
    for (auto _ : state) {
        net.zero_grad();
        benchmark::DoNotOptimize(net.forward(x, true));
        benchmark::DoNotOptimize(net.backward(g));
    }
}
BENCHMARK(BM_MlpForwardBackward);

void BM_KgBuildAndCompileOracle(benchmark::State& state) {
    for (auto _ : state) {
        const auto kg = kg::NetworkKg::build_lab();
        benchmark::DoNotOptimize(kg.make_oracle());
    }
}
BENCHMARK(BM_KgBuildAndCompileOracle);

void BM_KgOracleQuery(benchmark::State& state) {
    const auto kg = kg::NetworkKg::build_lab();
    const auto oracle = kg.make_oracle();
    const std::vector<std::string> valid = {"camera", "UDP", "DNS", "53", "dns_query"};
    const std::vector<std::string> invalid = {"camera", "UDP", "DNS", "443", "dns_query"};
    for (auto _ : state) {
        benchmark::DoNotOptimize(oracle.is_valid(valid));
        benchmark::DoNotOptimize(oracle.is_valid(invalid));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_KgOracleQuery);

void BM_TransformerEncode(benchmark::State& state) {
    netsim::LabSimOptions opts;
    opts.records = 2000;
    const auto table = netsim::LabTrafficSimulator(opts).generate();
    Rng rng(3);
    data::TableTransformer tf;
    tf.fit(table, data::TransformerOptions{}, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tf.transform(table, rng));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(table.rows()));
}
BENCHMARK(BM_TransformerEncode);

void BM_ConditionalSamplerDraw(benchmark::State& state) {
    netsim::LabSimOptions opts;
    opts.records = 4000;
    const auto table = netsim::LabTrafficSimulator(opts).generate();
    const data::ConditionalSampler sampler(table, netsim::lab_conditional_columns());
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sampler.draw(rng));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ConditionalSamplerDraw);

void BM_LabSimulator1k(benchmark::State& state) {
    for (auto _ : state) {
        netsim::LabSimOptions opts;
        opts.records = 1000;
        benchmark::DoNotOptimize(netsim::LabTrafficSimulator(opts).generate());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_LabSimulator1k);

}  // namespace
