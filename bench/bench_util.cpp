#include "bench_util.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "src/common/check.hpp"
#include "src/netsim/lab_simulator.hpp"
#include "src/netsim/unsw_synthesizer.hpp"

namespace kinet::bench {
namespace {

std::vector<std::size_t> continuous_columns_of(const data::Table& table) {
    std::vector<std::size_t> cols;
    for (std::size_t c = 0; c < table.cols(); ++c) {
        if (!table.meta(c).is_categorical()) {
            cols.push_back(c);
        }
    }
    return cols;
}

std::size_t scaled(std::size_t value, double scale, std::size_t min_value) {
    return std::max<std::size_t>(min_value,
                                 static_cast<std::size_t>(static_cast<double>(value) * scale));
}

gan::GanOptions bench_gan_options(std::uint64_t seed) {
    gan::GanOptions g;
    g.epochs = scaled(32, bench_scale(), 5);
    g.batch_size = 128;
    g.hidden_dim = 64;
    g.noise_dim = 32;
    g.seed = seed;
    return g;
}

}  // namespace

double bench_scale() {
    const char* env = std::getenv("KINETGAN_BENCH_SCALE");
    if (env == nullptr) {
        return 1.0;
    }
    const double v = std::atof(env);
    return std::clamp(v, 0.05, 1.0);
}

DatasetBundle make_lab_dataset(std::uint64_t seed) {
    netsim::LabSimOptions opts;
    opts.records = scaled(14520, bench_scale() * 0.35, 1200);
    opts.seed = seed;
    // Attack-enriched experiment split (as NIDS training corpora are): with
    // the simulator's natural ~7% attack share every classifier saturates at
    // the majority rate and the models become indistinguishable.
    opts.attack_intensity = 3.0;
    const auto table = netsim::LabTrafficSimulator(opts).generate();
    Rng rng(seed + 1);
    auto split = data::train_test_split(table, 0.3, rng, netsim::lab_label_column());

    DatasetBundle bundle;
    bundle.name = "Lab Data";
    bundle.train = std::move(split.train);
    bundle.test = std::move(split.test);
    bundle.label_column = netsim::lab_label_column();
    bundle.cond_columns = netsim::lab_conditional_columns();
    bundle.continuous_columns = continuous_columns_of(table);
    bundle.is_lab = true;
    return bundle;
}

DatasetBundle make_unsw_dataset(std::uint64_t seed) {
    netsim::UnswOptions opts;
    opts.records = scaled(24000, bench_scale() * 0.25, 1500);
    opts.seed = seed;
    opts.attack_intensity = 2.0;  // see make_lab_dataset
    const auto table = netsim::UnswNb15Synthesizer(opts).generate();
    Rng rng(seed + 1);
    auto split = data::train_test_split(table, 0.3, rng, netsim::unsw_label_column());

    DatasetBundle bundle;
    bundle.name = "UNSW-NB15";
    bundle.train = std::move(split.train);
    bundle.test = std::move(split.test);
    bundle.label_column = netsim::unsw_label_column();
    bundle.cond_columns = netsim::unsw_conditional_columns();
    bundle.continuous_columns = continuous_columns_of(table);
    bundle.is_lab = false;
    return bundle;
}

const std::vector<std::string>& model_names() {
    static const std::vector<std::string> kNames = {"CTGAN",    "OCTGAN",   "PATEGAN",
                                                    "TABLEGAN", "TVAE",     "KiNETGAN"};
    return kNames;
}

core::KiNetGanOptions default_kinetgan_options(const DatasetBundle& bundle, std::uint64_t seed) {
    core::KiNetGanOptions opts;
    opts.gan = bench_gan_options(seed);
    opts.transformer.max_modes = 4;
    (void)bundle;
    return opts;
}

std::unique_ptr<core::KiNetGan> make_kinetgan(const DatasetBundle& bundle,
                                              core::KiNetGanOptions options, std::uint64_t seed) {
    options.gan.seed = seed;
    auto kg = bundle.is_lab ? kg::NetworkKg::build_lab() : kg::NetworkKg::build_unsw();
    return std::make_unique<core::KiNetGan>(kg.make_oracle(), bundle.cond_columns, options);
}

std::unique_ptr<gan::Synthesizer> make_model(const std::string& name,
                                             const DatasetBundle& bundle, std::uint64_t seed) {
    if (name == "KiNETGAN") {
        return make_kinetgan(bundle, default_kinetgan_options(bundle, seed), seed);
    }
    if (name == "CTGAN" || name == "OCTGAN") {
        baselines::CondTabularGanOptions opts;
        opts.gan = bench_gan_options(seed);
        opts.transformer.max_modes = 4;
        if (name == "OCTGAN") {
            opts.ode_steps = 3;
            // The ODE trajectories make every step ~3x more expensive; keep
            // wall clock comparable the way the OCT-GAN paper does (fewer
            // epochs, same step budget otherwise).
            opts.gan.epochs = std::max<std::size_t>(4, opts.gan.epochs / 2);
            return std::make_unique<baselines::OctGan>(bundle.cond_columns, opts);
        }
        return std::make_unique<baselines::CtGan>(bundle.cond_columns, opts);
    }
    if (name == "PATEGAN") {
        baselines::PateGanOptions opts;
        opts.gan = bench_gan_options(seed);
        opts.transformer.max_modes = 4;
        opts.teachers = 5;
        opts.laplace_scale = 1.0;
        return std::make_unique<baselines::PateGan>(opts);
    }
    if (name == "TABLEGAN") {
        baselines::TableGanOptions opts;
        opts.gan = bench_gan_options(seed);
        opts.label_column = bundle.label_column;
        return std::make_unique<baselines::TableGan>(opts);
    }
    if (name == "TVAE") {
        baselines::TvaeOptions opts;
        opts.epochs = scaled(50, bench_scale(), 6);
        opts.hidden_dim = 64;
        opts.latent_dim = 32;
        opts.transformer.max_modes = 4;
        opts.seed = seed;
        return std::make_unique<baselines::Tvae>(opts);
    }
    throw Error("unknown model name: " + name);
}

void print_rule(std::size_t width) {
    std::cout << std::string(width, '-') << '\n';
}

void print_row(const std::vector<std::string>& cells, const std::vector<std::size_t>& widths) {
    KINET_CHECK(cells.size() == widths.size(), "print_row: width mismatch");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        std::string cell = cells[i];
        if (cell.size() < widths[i]) {
            cell += std::string(widths[i] - cell.size(), ' ');
        }
        std::cout << cell << "  ";
    }
    std::cout << '\n';
}

}  // namespace kinet::bench
