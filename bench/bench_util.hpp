// Shared helpers for the per-table/figure benchmark harnesses.
//
// Each harness regenerates one artifact of the paper's evaluation section
// (Table I, Figures 3-7) and prints the measured values next to the values
// the paper reports.  Absolute numbers are not expected to match — the data
// substrate here is a simulator — but the *shape* (who wins, by roughly what
// factor) is the reproduction target; see EXPERIMENTS.md.
//
// Environment knobs:
//   KINETGAN_BENCH_SCALE  — float in (0, 1], scales dataset sizes and epochs
//                           (default 1.0; use 0.2 for a quick smoke run).
#ifndef KINETGAN_BENCH_BENCH_UTIL_H
#define KINETGAN_BENCH_BENCH_UTIL_H

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/cond_tabular_gan.hpp"
#include "src/baselines/pategan.hpp"
#include "src/baselines/tablegan.hpp"
#include "src/baselines/tvae.hpp"
#include "src/core/kinetgan.hpp"
#include "src/data/split.hpp"
#include "src/gan/synthesizer.hpp"

namespace kinet::bench {

/// Train/test split of one experiment dataset plus its GAN configuration.
struct DatasetBundle {
    std::string name;  // "Lab Data" or "UNSW-NB15"
    data::Table train;
    data::Table test;
    std::size_t label_column = 0;
    std::vector<std::size_t> cond_columns;
    std::vector<std::size_t> continuous_columns;
    bool is_lab = true;
};

/// Scale factor from KINETGAN_BENCH_SCALE (clamped to [0.05, 1]).
[[nodiscard]] double bench_scale();

/// The lab-capture experiment dataset (14,520 records scaled by bench_scale,
/// 70/30 stratified split).
[[nodiscard]] DatasetBundle make_lab_dataset(std::uint64_t seed = 7);

/// The UNSW-NB15-style experiment dataset.
[[nodiscard]] DatasetBundle make_unsw_dataset(std::uint64_t seed = 11);

/// Model roster in the paper's Table I order.
[[nodiscard]] const std::vector<std::string>& model_names();

/// Builds a synthesizer by name, configured for the bundle.  Epochs/hidden
/// sizes are the bench defaults scaled by bench_scale().
[[nodiscard]] std::unique_ptr<gan::Synthesizer> make_model(const std::string& name,
                                                           const DatasetBundle& bundle,
                                                           std::uint64_t seed = 42);

/// Fully-configured KiNETGAN (concrete type, e.g. for discriminator scores).
[[nodiscard]] std::unique_ptr<core::KiNetGan> make_kinetgan(const DatasetBundle& bundle,
                                                            core::KiNetGanOptions options,
                                                            std::uint64_t seed = 42);

/// Bench-default KiNETGAN options for a bundle (epochs etc. pre-scaled).
[[nodiscard]] core::KiNetGanOptions default_kinetgan_options(const DatasetBundle& bundle,
                                                             std::uint64_t seed = 42);

/// Table-row printing helpers.
void print_rule(std::size_t width);
void print_row(const std::vector<std::string>& cells, const std::vector<std::size_t>& widths);

}  // namespace kinet::bench

#endif  // KINETGAN_BENCH_BENCH_UTIL_H
