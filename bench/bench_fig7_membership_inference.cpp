// Reproduces Figure 7: membership-inference attack in White-Box (WB) and
// Fully-Black-Box (FBB) settings against the lab data.
//
// WB uses the trained discriminator's score when the model exposes one
// (KiNETGAN, CTGAN, OCTGAN, TABLEGAN); TVAE and PATEGAN have no queryable
// discriminator, so their WB column falls back to the FBB statistic (marked
// with '*'), matching the convention that WB >= FBB information-wise.
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "src/common/stopwatch.hpp"
#include "src/common/text.hpp"
#include "src/eval/privacy/membership_inference.hpp"

namespace {

using namespace kinet;        // NOLINT
using namespace kinet::bench; // NOLINT

// Paper (Fig. 7): attack accuracy, 0.5 = chance (lower = safer).
const std::map<std::string, std::array<double, 2>> kPaper = {
    //           WB    FBB
    {"CTGAN",    {0.62, 0.56}}, {"OCTGAN",   {0.58, 0.54}},
    {"PATEGAN",  {0.55, 0.51}}, {"TABLEGAN", {0.64, 0.58}},
    {"TVAE",     {0.60, 0.55}}, {"KiNETGAN", {0.54, 0.50}},
};

}  // namespace

int main() {
    std::cout << "=== Figure 7: Membership Inference attack, WB and FBB (lab data) ===\n";
    std::cout << "(balanced attack accuracy; 0.5 = chance; paper values in parentheses)\n\n";

    const DatasetBundle lab = make_lab_dataset();
    const std::vector<std::size_t> widths = {10, 20, 20};
    print_row({"Model", "White-Box", "Fully-Black-Box"}, widths);
    print_rule(56);

    for (const auto& name : model_names()) {
        Stopwatch watch;
        auto model = make_model(name, lab);
        model->fit(lab.train);
        const auto synth = model->sample(lab.train.rows());

        eval::FbbOptions fbb_opts;
        fbb_opts.feature_columns = lab.continuous_columns;
        fbb_opts.max_candidates = 500;
        const double fbb = eval::membership_inference_full_black_box(lab.train, lab.test, synth,
                                                                     fbb_opts);

        // White-box: query the discriminator when the model has one.
        double wb = fbb;
        bool wb_is_proxy = true;
        std::vector<double> member_scores;
        std::vector<double> nonmember_scores;
        if (auto* kinet_gan = dynamic_cast<core::KiNetGan*>(model.get())) {
            member_scores = kinet_gan->discriminator_scores(lab.train);
            nonmember_scores = kinet_gan->discriminator_scores(lab.test);
            wb_is_proxy = false;
        } else if (auto* ct = dynamic_cast<baselines::CondTabularGan*>(model.get())) {
            member_scores = ct->discriminator_scores(lab.train);
            nonmember_scores = ct->discriminator_scores(lab.test);
            wb_is_proxy = false;
        } else if (auto* tg = dynamic_cast<baselines::TableGan*>(model.get())) {
            member_scores = tg->discriminator_scores(lab.train);
            nonmember_scores = tg->discriminator_scores(lab.test);
            wb_is_proxy = false;
        }
        if (!wb_is_proxy) {
            wb = eval::membership_inference_white_box(member_scores, nonmember_scores);
        }

        const auto& paper = kPaper.at(name);
        print_row({name,
                   text::format_double(wb, 3) + (wb_is_proxy ? "*" : "") + " (" +
                       text::format_double(paper[0], 2) + ")",
                   text::format_double(fbb, 3) + " (" + text::format_double(paper[1], 2) + ")"},
                  widths);
        std::cerr << "[fig7] " << name << " done in " << text::format_double(watch.seconds(), 1)
                  << "s\n";
    }

    print_rule(56);
    std::cout << "\n* = no queryable discriminator; FBB statistic reported.\n"
                 "Shape check: KiNETGAN near chance in both settings, below CTGAN/TABLEGAN.\n";
    return 0;
}
