// Reproduces Table I: EMD and combined (L1 categorical / L2 continuous)
// distance between synthetic and original data, 6 models x 2 datasets.
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "src/common/stopwatch.hpp"
#include "src/common/text.hpp"
#include "src/eval/metrics.hpp"

namespace {

using namespace kinet;        // NOLINT
using namespace kinet::bench; // NOLINT

// Paper-reported values (Table I): {EMD, Distance} per model per dataset.
const std::map<std::string, std::array<double, 4>> kPaper = {
    //                lab EMD  lab Dist  unsw EMD  unsw Dist
    {"CTGAN",    {0.06, 0.09, 0.07, 0.20}},
    {"OCTGAN",   {1.61, 0.95, 1.32, 1.61}},
    {"PATEGAN",  {1.07, 0.09, 0.53, 0.24}},
    {"TABLEGAN", {1.02, 0.19, 1.21, 0.53}},
    {"TVAE",     {0.06, 0.04, 0.13, 0.23}},
    {"KiNETGAN", {0.06, 0.03, 0.07, 0.03}},
};

}  // namespace

int main() {
    std::cout << "=== Table I: Distance between Synthetic and Original Data ===\n";
    std::cout << "(paper values in parentheses; lower is better)\n\n";

    const std::vector<std::size_t> widths = {10, 18, 18, 18, 18};
    print_row({"Model", "Lab EMD", "Lab Distance", "UNSW EMD", "UNSW Distance"}, widths);
    print_rule(90);

    const DatasetBundle lab = make_lab_dataset();
    const DatasetBundle unsw = make_unsw_dataset();

    for (const auto& name : model_names()) {
        std::array<double, 4> measured{};
        std::size_t slot = 0;
        for (const DatasetBundle* bundle : {&lab, &unsw}) {
            Stopwatch watch;
            auto model = make_model(name, *bundle);
            model->fit(bundle->train);
            const auto synth = model->sample(bundle->train.rows());
            measured[slot * 2] = eval::mean_emd(bundle->test, synth);
            measured[slot * 2 + 1] = eval::combined_distance(bundle->test, synth);
            std::cerr << "[table1] " << name << " on " << bundle->name << " done in "
                      << text::format_double(watch.seconds(), 1) << "s\n";
            ++slot;
        }
        const auto& paper = kPaper.at(name);
        std::vector<std::string> row = {name};
        for (std::size_t i = 0; i < 4; ++i) {
            row.push_back(text::format_double(measured[i], 3) + " (" +
                          text::format_double(paper[i], 2) + ")");
        }
        print_row(row, widths);
    }

    print_rule(90);
    std::cout << "\nShape check: KiNETGAN should have the lowest (or tied-lowest) EMD and the\n"
                 "lowest combined distance on both datasets, with TVAE/CTGAN close behind and\n"
                 "OCTGAN/TABLEGAN/PATEGAN clearly worse.\n";
    return 0;
}
