// Reproduces Figure 3: NIDS classifier accuracy on lab-collected data —
// baseline (train on real) vs. classifiers trained on each model's synthetic
// data, tested on held-out real traffic (TSTR).
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "src/common/stopwatch.hpp"
#include "src/common/text.hpp"
#include "src/eval/tstr.hpp"

namespace {

using namespace kinet;        // NOLINT
using namespace kinet::bench; // NOLINT

// Paper (Fig. 3): average NIDS accuracy on lab data.
const std::map<std::string, double> kPaperAverage = {
    {"Baseline", 0.86}, {"CTGAN", 0.74},    {"OCTGAN", 0.60}, {"PATEGAN", 0.65},
    {"TABLEGAN", 0.70}, {"TVAE", 0.76},     {"KiNETGAN", 0.81},
};

}  // namespace

int main() {
    std::cout << "=== Figure 3: NIDS accuracy, Lab Collected Data ===\n";
    std::cout << "(classifiers trained on synthetic, tested on real; paper averages in "
                 "parentheses)\n\n";

    const DatasetBundle lab = make_lab_dataset();
    const std::vector<std::size_t> widths = {10, 8, 8, 8, 8, 8, 8, 16};
    print_row({"Model", "DT", "RF", "LogReg", "KNN", "NB", "MLP", "Average"}, widths);
    print_rule(90);

    auto report = [&widths](const std::string& name, const std::vector<eval::TstrResult>& res) {
        std::vector<std::string> row = {name};
        for (const auto& r : res) {
            row.push_back(text::format_double(r.accuracy, 3));
        }
        row.push_back(text::format_double(eval::average_accuracy(res), 3) + " (" +
                      text::format_double(kPaperAverage.at(name), 2) + ")");
        print_row(row, widths);
    };

    // Baseline: train on real.
    report("Baseline", eval::evaluate_tstr(lab.train, lab.test, lab.label_column));

    for (const auto& name : model_names()) {
        Stopwatch watch;
        auto model = make_model(name, lab);
        model->fit(lab.train);
        const auto synth = model->sample(lab.train.rows());
        report(name, eval::evaluate_tstr(synth, lab.test, lab.label_column));
        std::cerr << "[fig3] " << name << " done in " << text::format_double(watch.seconds(), 1)
                  << "s\n";
    }

    print_rule(90);
    std::cout << "\nShape check: Baseline highest; KiNETGAN the best synthetic trainer,\n"
                 "ahead of CTGAN/TVAE and clearly ahead of OCTGAN/TABLEGAN/PATEGAN.\n";
    return 0;
}
