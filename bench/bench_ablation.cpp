// Ablation study of KiNETGAN's design choices (DESIGN.md experiment A1):
//   - knowledge-guided discriminator D_KG on/off,
//   - conditional copy penalty BCE(C, Ĉ) on/off,
//   - minority-value resampling on/off,
//   - reduced conditioning (event_type only) with/without D_KG — the regime
//     where the knowledge graph must supply the attribute correlations the
//     conditioning no longer pins down.
// Reports KG validity of the synthetic attributes, EMD, and TSTR accuracy.
#include <iostream>

#include "bench_util.hpp"
#include "src/common/stopwatch.hpp"
#include "src/common/text.hpp"
#include "src/eval/metrics.hpp"
#include "src/eval/tstr.hpp"

namespace {

using namespace kinet;        // NOLINT
using namespace kinet::bench; // NOLINT

struct Variant {
    std::string name;
    core::KiNetGanOptions options;
    std::vector<std::size_t> cond_columns;  // empty = bundle default
};

}  // namespace

int main() {
    std::cout << "=== Ablation: KiNETGAN design choices (lab data) ===\n\n";

    const DatasetBundle lab = make_lab_dataset();
    const auto base = default_kinetgan_options(lab);

    std::vector<Variant> variants;
    variants.push_back({"full", base, {}});
    {
        auto v = base;
        v.use_kg_discriminator = false;
        variants.push_back({"-D_KG", v, {}});
    }
    {
        auto v = base;
        v.use_cond_penalty = false;
        variants.push_back({"-condBCE", v, {}});
    }
    {
        auto v = base;
        v.use_minority_resampling = false;
        variants.push_back({"-minority", v, {}});
    }
    const std::vector<std::size_t> event_only = {lab.train.column_index("event_type")};
    {
        auto v = base;
        variants.push_back({"evt+KG", v, event_only});
    }
    {
        auto v = base;
        v.use_kg_discriminator = false;
        variants.push_back({"evt-KG", v, event_only});
    }

    const std::vector<std::size_t> widths = {10, 12, 10, 12, 12};
    print_row({"Variant", "KGvalidity", "EMD", "TSTR acc", "adherence"}, widths);
    print_rule(64);

    for (const auto& variant : variants) {
        Stopwatch watch;
        DatasetBundle bundle = lab;
        if (!variant.cond_columns.empty()) {
            bundle.cond_columns = variant.cond_columns;
        }
        auto model = make_kinetgan(bundle, variant.options);
        model->fit(bundle.train);
        const auto synth = model->sample(bundle.train.rows());

        const double validity = model->kg_validity_rate(synth);
        const double emd = eval::mean_emd(bundle.test, synth);
        const auto tstr = eval::evaluate_tstr(synth, bundle.test, bundle.label_column);

        print_row({variant.name, text::format_double(validity, 3), text::format_double(emd, 3),
                   text::format_double(eval::average_accuracy(tstr), 3),
                   text::format_double(model->last_cond_adherence(), 3)},
                  widths);
        std::cerr << "[ablation] " << variant.name << " done in "
                  << text::format_double(watch.seconds(), 1) << "s\n";
    }

    print_rule(64);
    std::cout << "\nExpected: 'full' dominates; dropping the conditional penalty collapses\n"
                 "validity and utility; dropping minority resampling hurts rare-class TSTR;\n"
                 "with event-only conditioning the KG discriminator carries the validity\n"
                 "(evt+KG well above evt-KG) — the paper's central mechanism in isolation.\n";
    return 0;
}
