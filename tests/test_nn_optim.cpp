// Optimizer behaviour: convergence on convex problems, clipping, state.
#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/nn.hpp"

namespace {

using namespace kinet::nn;  // NOLINT
using kinet::Rng;
using Matrix = kinet::tensor::Matrix;

// Minimise f(w) = ||w - target||^2 with the given optimizer.
template <typename MakeOpt>
double minimise_quadratic(MakeOpt make_opt, std::size_t steps) {
    Parameter w(Matrix(1, 4, 0.0F), "w");
    const Matrix target{{1.0F, -2.0F, 0.5F, 3.0F}};
    std::vector<Parameter*> params = {&w};
    auto opt = make_opt(params);
    for (std::size_t i = 0; i < steps; ++i) {
        opt->zero_grad();
        for (std::size_t c = 0; c < 4; ++c) {
            w.grad(0, c) = 2.0F * (w.value(0, c) - target(0, c));
        }
        opt->step();
    }
    double err = 0.0;
    for (std::size_t c = 0; c < 4; ++c) {
        err += std::abs(w.value(0, c) - target(0, c));
    }
    return err;
}

TEST(Sgd, ConvergesOnQuadratic) {
    const double err = minimise_quadratic(
        [](std::vector<Parameter*> p) { return std::make_unique<Sgd>(std::move(p), 0.05F, 0.0F); },
        300);
    EXPECT_LT(err, 1e-3);
}

TEST(Sgd, MomentumAcceleratesConvergence) {
    const double plain = minimise_quadratic(
        [](std::vector<Parameter*> p) { return std::make_unique<Sgd>(std::move(p), 0.01F, 0.0F); },
        60);
    const double momentum = minimise_quadratic(
        [](std::vector<Parameter*> p) { return std::make_unique<Sgd>(std::move(p), 0.01F, 0.9F); },
        60);
    EXPECT_LT(momentum, plain);
}

TEST(Adam, ConvergesOnQuadratic) {
    const double err = minimise_quadratic(
        [](std::vector<Parameter*> p) {
            return std::make_unique<Adam>(std::move(p), 0.1F, 0.9F, 0.999F);
        },
        400);
    EXPECT_LT(err, 1e-2);
}

TEST(Adam, WeightDecayShrinksWeights) {
    Parameter w(Matrix(1, 1, 5.0F), "w");
    std::vector<Parameter*> params = {&w};
    Adam opt(params, 0.1F, 0.9F, 0.999F, 1e-8F, /*weight_decay=*/0.5F);
    for (int i = 0; i < 50; ++i) {
        opt.zero_grad();  // zero gradient: only decay acts
        opt.step();
    }
    EXPECT_LT(std::abs(w.value(0, 0)), 1.0F);
}

TEST(ClipGradNorm, RescalesOnlyWhenAboveThreshold) {
    Parameter w(Matrix(1, 2), "w");
    w.grad(0, 0) = 3.0F;
    w.grad(0, 1) = 4.0F;  // norm 5
    std::vector<Parameter*> params = {&w};

    const double pre = clip_grad_norm(params, 10.0);
    EXPECT_NEAR(pre, 5.0, 1e-6);
    EXPECT_FLOAT_EQ(w.grad(0, 0), 3.0F);  // unchanged

    const double pre2 = clip_grad_norm(params, 1.0);
    EXPECT_NEAR(pre2, 5.0, 1e-6);
    const double post = std::sqrt(w.grad(0, 0) * w.grad(0, 0) + w.grad(0, 1) * w.grad(0, 1));
    EXPECT_NEAR(post, 1.0, 1e-4);
}

TEST(Optimizer, ZeroGradClearsAllParameters) {
    Rng rng(300);
    Sequential net;
    net.emplace<Linear>(3, 3, rng);
    net.emplace<Linear>(3, 1, rng);
    auto params = net.parameters();
    Adam opt(params, 0.01F);
    for (auto* p : params) {
        p->grad.fill(1.0F);
    }
    opt.zero_grad();
    for (const auto* p : params) {
        for (float g : p->grad.data()) {
            EXPECT_EQ(g, 0.0F);
        }
    }
}

TEST(Optimizer, TrainsXorWithMlp) {
    Rng rng(301);
    Sequential net;
    net.emplace<Linear>(2, 16, rng);
    net.emplace<Tanh>();
    net.emplace<Linear>(16, 1, rng);
    Adam opt(net.parameters(), 0.05F, 0.9F, 0.999F);

    const Matrix x{{0.0F, 0.0F}, {0.0F, 1.0F}, {1.0F, 0.0F}, {1.0F, 1.0F}};
    const Matrix y{{0.0F}, {1.0F}, {1.0F}, {0.0F}};

    double final_loss = 1e9;
    for (int epoch = 0; epoch < 500; ++epoch) {
        net.zero_grad();
        const Matrix logits = net.forward(x, true);
        const auto loss = bce_with_logits(logits, y);
        (void)net.backward(loss.grad);
        opt.step();
        final_loss = loss.value;
    }
    EXPECT_LT(final_loss, 0.1);

    const Matrix logits = net.forward(x, false);
    EXPECT_LT(logits(0, 0), 0.0F);
    EXPECT_GT(logits(1, 0), 0.0F);
    EXPECT_GT(logits(2, 0), 0.0F);
    EXPECT_LT(logits(3, 0), 0.0F);
}

}  // namespace
