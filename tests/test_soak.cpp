// Bounded soak/churn suite for the event-driven server core.
//
// Everything here is CI-runnable (seconds, not minutes) and deterministic
// in what it asserts: connection scaling without thread growth, stream
// suspension under a slow reader, admission control answering queue_full
// instead of hanging, and job churn interleaved with live traffic.  The
// suite runs under TSan in CI, so the loads are sized for an instrumented
// binary.
#include <gtest/gtest.h>
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <latch>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/csv.hpp"
#include "src/service/client.hpp"
#include "src/service/protocol.hpp"
#include "src/service/server.hpp"
#include "src/service/socket.hpp"

namespace {

using namespace kinet;           // NOLINT
using namespace kinet::service;  // NOLINT

/// Threads of this process, from /proc/self/status (Linux-only, like epoll).
std::size_t process_thread_count() {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("Threads:", 0) == 0) {
            std::istringstream in(line.substr(8));
            std::size_t n = 0;
            in >> n;
            return n;
        }
    }
    return 0;
}

/// Raises RLIMIT_NOFILE towards `want` and returns the usable soft limit.
std::size_t raise_fd_limit(std::size_t want) {
    rlimit lim{};
    if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) {
        return 1024;
    }
    if (lim.rlim_cur < want && (lim.rlim_max == RLIM_INFINITY || lim.rlim_max >= want)) {
        rlimit raised = lim;
        raised.rlim_cur = want;
        if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) {
            return want;
        }
    }
    return static_cast<std::size_t>(lim.rlim_cur);
}

/// Shared fixture: one server with one small trained model for the suite.
class SoakTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        ServerOptions options;
        options.max_connections = 4096;
        server_ = new SynthServer(options);
        server_->start();
        const Response r = server_->handle(
            parse_request("TRAIN site-0 records=400 sim-seed=11 epochs=2 gan-seed=1"));
        ASSERT_TRUE(r.ok) << r.error;
    }
    static void TearDownTestSuite() {
        delete server_;
        server_ = nullptr;
    }

    static SynthServer* server_;
};

SynthServer* SoakTest::server_ = nullptr;

TEST_F(SoakTest, AThousandIdleConnectionsAddNoThreads) {
    // Client and server share this process, so each connection costs two
    // fds; leave generous headroom for the suite's other descriptors.
    const std::size_t fd_limit = raise_fd_limit(4096);
    const std::size_t target =
        std::min<std::size_t>(1000, fd_limit > 300 ? (fd_limit - 300) / 2 : 64);
    ASSERT_GE(target, 64U) << "fd limit too low to say anything useful";

    const std::size_t threads_before = process_thread_count();
    ASSERT_GT(threads_before, 0U);

    std::vector<TcpStream> idle;
    idle.reserve(target);
    for (std::size_t i = 0; i < target; ++i) {
        idle.push_back(TcpStream::connect("127.0.0.1", server_->port(), 2000));
    }
    // Every connection is epoll state, not a thread: the process grew by
    // zero threads no matter how many sockets are parked.
    EXPECT_EQ(process_thread_count(), threads_before);

    // The loop still serves traffic with all of them open — both a fast op
    // and real sampling work through the worker pool.
    auto client = SynthClient::connect("127.0.0.1", server_->port());
    client.ping();
    EXPECT_EQ(csv::parse(client.sample_csv("site-0", 25, 7)).rows.size(), 25U);
    // A few of the parked connections speak too, out of order.
    for (std::size_t i = 0; i < target; i += target / 7 + 1) {
        idle[i].write_all("PING\n");
        const auto status = idle[i].read_line();
        ASSERT_TRUE(status.has_value());
        EXPECT_EQ(*status, "OK 5");
        (void)idle[i].read_exact(5);
    }
    EXPECT_GE(server_->metrics().connections_peak.load(),
              static_cast<std::uint64_t>(target));
    client.quit();
}

TEST_F(SoakTest, SlowReaderSuspendsItsStreamWithoutBlockingOthers) {
    const std::uint64_t suspensions_before = server_->metrics().stream_suspensions.load();
    constexpr std::size_t kRows = 120000;

    std::atomic<bool> stalled_done{false};
    std::string stall_error;
    std::uint64_t streamed_rows = 0;
    std::thread stalled([&] {
        try {
            auto slow = SynthClient::connect("127.0.0.1", server_->port());
            const auto deadline =
                std::chrono::steady_clock::now() + std::chrono::seconds(20);
            streamed_rows = slow.sample_stream(
                "site-0", kRows, 9,
                [&](const std::string&) {
                    // Dawdle until the server parks this stream on write
                    // backpressure (bounded by the deadline), then drain at
                    // full speed so the test stays fast.
                    while (server_->metrics().stream_suspensions.load() ==
                               suspensions_before &&
                           std::chrono::steady_clock::now() < deadline) {
                        std::this_thread::sleep_for(std::chrono::milliseconds(20));
                    }
                },
                /*chunk_rows=*/256);
            slow.quit();
        } catch (const std::exception& e) {
            stall_error = e.what();
        }
        stalled_done.store(true);
    });

    // While the reader dawdles, other clients get served immediately: the
    // suspended stream holds no worker thread.
    std::string expected;
    {
        auto probe = SynthClient::connect("127.0.0.1", server_->port());
        for (int i = 0; i < 5; ++i) {
            probe.ping();
            const std::string csv_text = probe.sample_csv("site-0", 40, 123);
            if (expected.empty()) {
                expected = csv_text;
            }
            EXPECT_EQ(csv_text, expected) << "determinism broke under backpressure";
        }
        probe.quit();
    }

    stalled.join();
    ASSERT_TRUE(stall_error.empty()) << stall_error;
    ASSERT_TRUE(stalled_done.load());
    EXPECT_EQ(streamed_rows, kRows) << "suspended stream did not resume to completion";
    EXPECT_GT(server_->metrics().stream_suspensions.load(), suspensions_before)
        << "write backpressure never suspended the stream";
}

TEST_F(SoakTest, ConnectionChurnSurvivesAbruptDisconnects) {
    // Clients that vanish mid-request, mid-stream, and mid-line must not
    // wedge the loop or leak connections.
    for (int round = 0; round < 30; ++round) {
        auto stream = TcpStream::connect("127.0.0.1", server_->port());
        switch (round % 3) {
        case 0:
            stream.write_all("SAMPLE site-0 5000 stream=1 chunk=100\n");
            break;  // vanish before reading any frame
        case 1:
            stream.write_all("SAMPLE site-0");
            break;  // vanish mid-line
        default:
            stream.write_all("PING\n");
            (void)stream.read_line();
            break;  // vanish after a served request
        }
        // Destructor closes the socket abruptly (no QUIT).
    }
    // The loop reaps them all; a fresh client still gets full service.
    auto client = SynthClient::connect("127.0.0.1", server_->port());
    client.ping();
    EXPECT_EQ(csv::parse(client.sample_csv("site-0", 10, 5)).rows.size(), 10U);
    client.quit();
    // Reaping is asynchronous; give the loop a moment, then the gauge must
    // come back to near-idle (this suite's fixtures keep no connections).
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server_->metrics().connections_open.load() != 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(server_->metrics().connections_open.load(), 0);
}

TEST(SoakAdmission, SaturatedQueueAnswersQueueFullAndNeverHangs) {
    // A deliberately tiny server: one worker, one queue slot.
    ServerOptions options;
    options.request_workers = 1;
    options.queue_depth = 1;
    SynthServer server(options);
    server.start();
    const Response trained = server.handle(
        parse_request("TRAIN m records=400 sim-seed=11 epochs=2 gan-seed=1"));
    ASSERT_TRUE(trained.ok) << trained.error;

    // Pre-connect a burst of clients, then release them simultaneously:
    // the requests all land while the first one still occupies the worker
    // (each SAMPLE takes tens of milliseconds; the loop parses the burst
    // in microseconds), so 1 runs, 1 queues, and the rest MUST be rejected
    // with queue_full — promptly, never a hang.
    constexpr std::size_t kBurst = 8;
    std::latch release(kBurst);
    std::atomic<std::size_t> ok{0};
    std::atomic<std::size_t> rejected{0};
    std::vector<std::string> unexpected(kBurst);
    std::vector<std::thread> burst;
    burst.reserve(kBurst);
    for (std::size_t c = 0; c < kBurst; ++c) {
        burst.emplace_back([&, c] {
            try {
                ClientOptions copts;
                copts.recv_timeout_ms = 60000;  // backstop, not the assert
                auto client = SynthClient::connect("127.0.0.1", server.port(), copts);
                release.arrive_and_wait();
                (void)client.sample_csv("m", 20000, c);
                ok.fetch_add(1);
            } catch (const Error& e) {
                if (is_queue_full_message(e.what())) {
                    rejected.fetch_add(1);
                } else {
                    unexpected[c] = e.what();
                }
            }
        });
    }
    // Liveness while saturated: PING is a fast op and bypasses the queue.
    {
        ClientOptions copts;
        copts.recv_timeout_ms = 10000;
        auto probe = SynthClient::connect("127.0.0.1", server.port(), copts);
        probe.ping();
        probe.quit();
    }
    for (auto& t : burst) {
        t.join();
    }
    for (const auto& message : unexpected) {
        EXPECT_TRUE(message.empty()) << message;
    }
    EXPECT_EQ(ok.load() + rejected.load(), kBurst);
    EXPECT_GE(rejected.load(), 1U) << "burst past the queue bound was never rejected";
    EXPECT_GE(ok.load(), 1U) << "admitted burst requests must still succeed";
    EXPECT_GE(server.metrics().queue_full_rejections.load(), rejected.load());

    // With retries configured, a client rides out the pressure instead of
    // surfacing it (the queue drains as the busy op finishes).
    ClientOptions retrying;
    retrying.queue_full_retries = 50;
    retrying.retry_backoff_ms = 20;
    auto patient = SynthClient::connect("127.0.0.1", server.port(), retrying);
    EXPECT_EQ(csv::parse(patient.sample_csv("m", 30, 9)).rows.size(), 30U);
    patient.quit();
    server.stop();
}

TEST_F(SoakTest, JobChurnInterleavedWithStreamsAndCancels) {
    // Async TRAINs churned through POLL/CANCEL while streams and framed
    // samples run — the job executor and the event loop stay independent.
    auto client = SynthClient::connect("127.0.0.1", server_->port());

    TrainSpec slow;
    slow.records = 1200;
    slow.epochs = 200;  // never finishes; cancelled below
    slow.sim_seed = 11;
    const std::uint64_t job_a = client.train_async("churn-a", slow);
    const std::uint64_t job_b = client.train_async("churn-b", slow);

    std::atomic<bool> stop_traffic{false};
    std::vector<std::string> failures(3);
    std::vector<std::thread> traffic;
    traffic.reserve(3);
    for (std::size_t t = 0; t < 3; ++t) {
        traffic.emplace_back([&, t] {
            try {
                auto c = SynthClient::connect("127.0.0.1", server_->port());
                while (!stop_traffic.load()) {
                    std::string streamed;
                    (void)c.sample_stream(
                        "site-0", 400, 70 + t,
                        [&](const std::string& part) { streamed += part; },
                        /*chunk_rows=*/64);
                    if (streamed.empty()) {
                        throw Error("empty stream payload");
                    }
                    (void)c.poll_job(job_a);
                }
                c.quit();
            } catch (const std::exception& e) {
                failures[t] = e.what();
            }
        });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    (void)client.cancel_job(job_a);
    (void)client.cancel_job(job_b);
    const auto info_a = client.wait_for_job(job_a);
    const auto info_b = client.wait_for_job(job_b);
    EXPECT_EQ(info_a.at("state"), "cancelled");
    EXPECT_EQ(info_b.at("state"), "cancelled");

    stop_traffic.store(true);
    for (auto& t : traffic) {
        t.join();
    }
    for (const auto& message : failures) {
        EXPECT_TRUE(message.empty()) << message;
    }
    // The churned models never registered (cancelled before completion).
    EXPECT_EQ(server_->registry().get("churn-a"), nullptr);
    EXPECT_EQ(server_->registry().get("churn-b"), nullptr);
    client.quit();
}

TEST(SoakFleet, NodeDeathMidStreamLeavesSurvivorsServing) {
    // A 3-node fleet under streaming load loses one member abruptly: the
    // dead node's clients see clean errors, the survivors' streams finish,
    // health converges (STATS/CLUSTER show the death), and replicated
    // models stay reachable everywhere.
    std::vector<SynthServer*> fleet;
    std::vector<PeerAddress> addrs;
    for (std::size_t i = 0; i < 3; ++i) {
        auto* s = new SynthServer(ServerOptions{});
        s->start();
        fleet.push_back(s);
        addrs.push_back(PeerAddress{"127.0.0.1", s->port()});
    }
    for (std::size_t i = 0; i < 3; ++i) {
        ClusterConfig cfg;
        cfg.self = addrs[i];
        for (std::size_t j = 0; j < 3; ++j) {
            if (j != i) {
                cfg.peers.push_back(addrs[j]);
            }
        }
        cfg.replicas = 2;
        cfg.probe_interval_ms = 100;
        fleet[i]->enable_cluster(cfg);
    }

    // FEDTRAIN from node 0: train there, publish the snapshot fleet-wide.
    {
        auto seeder = SynthClient::connect("127.0.0.1", fleet[0]->port());
        TrainSpec spec;
        spec.records = 400;
        spec.sim_seed = 11;
        spec.epochs = 2;
        spec.gan_seed = 1;
        const std::uint64_t job = seeder.fedtrain_async("fleet-soak", spec);
        const auto info = seeder.wait_for_job(job);
        ASSERT_EQ(info.at("state"), "done");
        seeder.quit();
    }
    for (auto* s : fleet) {
        ASSERT_NE(s->registry().get("fleet-soak"), nullptr);
    }

    // Streaming load against the two survivors-to-be, plus one client that
    // will be cut off mid-stream when its node dies.
    std::atomic<bool> victim_errored{false};
    std::vector<std::string> failures(2);
    std::atomic<std::size_t> survivor_rows{0};
    std::latch streams_started(3);
    std::thread victim([&] {
        try {
            ClientOptions copts;
            copts.recv_timeout_ms = 20000;
            auto c = SynthClient::connect("127.0.0.1", fleet[2]->port(), copts);
            bool first = true;
            (void)c.sample_stream(
                "fleet-soak", 200000, 3,
                [&](const std::string&) {
                    if (first) {
                        first = false;
                        streams_started.arrive_and_wait();
                    }
                    // Dawdle so the kill lands mid-stream.
                    std::this_thread::sleep_for(std::chrono::milliseconds(10));
                },
                /*chunk_rows=*/128);
        } catch (const Error&) {
            victim_errored.store(true);  // expected: the node died under it
        }
    });
    std::vector<std::thread> survivors;
    for (std::size_t t = 0; t < 2; ++t) {
        survivors.emplace_back([&, t] {
            try {
                ClientOptions copts;
                copts.recv_timeout_ms = 60000;
                auto c = SynthClient::connect("127.0.0.1", fleet[t]->port(), copts);
                bool first = true;
                const std::uint64_t rows = c.sample_stream(
                    "fleet-soak", 20000, 7 + t,
                    [&](const std::string&) {
                        if (first) {
                            first = false;
                            streams_started.arrive_and_wait();
                        }
                    },
                    /*chunk_rows=*/256);
                survivor_rows.fetch_add(rows);
                c.quit();
            } catch (const std::exception& e) {
                failures[t] = e.what();
            }
        });
    }

    // Kill node 2 once all three streams are demonstrably in flight.
    streams_started.wait();
    fleet[2]->stop();
    victim.join();
    for (auto& t : survivors) {
        t.join();
    }
    EXPECT_TRUE(victim_errored.load()) << "killed node's stream ended without error";
    for (const auto& message : failures) {
        EXPECT_TRUE(message.empty()) << message;
    }
    EXPECT_EQ(survivor_rows.load(), 2U * 20000U) << "a survivor stream fell short";

    // Health converges: force a probe round instead of sleeping for one.
    fleet[0]->cluster()->probe_now();
    fleet[1]->cluster()->probe_now();
    const std::string dead = fleet[2]->cluster()->self_name();
    EXPECT_FALSE(fleet[0]->cluster()->peer_up(dead));

    // STATS and CLUSTER surface the death; fresh requests keep working on
    // both survivors, for the replicated model, with identical bytes.
    auto a = SynthClient::connect("127.0.0.1", fleet[0]->port());
    auto b = SynthClient::connect("127.0.0.1", fleet[1]->port());
    Request stats;
    stats.op = Op::stats;
    const std::string payload = a.rpc(stats).payload;
    EXPECT_NE(payload.find("peers_up=1"), std::string::npos) << payload;
    EXPECT_NE(payload.find("peer." + dead + ".up=0"), std::string::npos) << payload;
    EXPECT_EQ(a.cluster().at("members_up"), "2");
    const std::string expect = a.sample_csv("fleet-soak", 50, 99);
    EXPECT_EQ(b.sample_csv("fleet-soak", 50, 99), expect);
    a.quit();
    b.quit();
    for (auto* s : fleet) {
        delete s;
    }
}

TEST(SoakFleet, MembershipChurnConvergesUnderLoad) {
    // Repeated join/leave cycles against a live 3-node fleet with real
    // timers (100ms probes, periodic anti-entropy) while a client hammers
    // SAMPLE: every cycle must converge, the epoch must climb strictly, and
    // the load must never see a permanent error or changed bytes.
    std::vector<std::unique_ptr<SynthServer>> fleet;
    std::vector<PeerAddress> addrs;
    for (std::size_t i = 0; i < 3; ++i) {
        ServerOptions options;
        options.train_workers = 2;
        fleet.push_back(std::make_unique<SynthServer>(options));
        fleet[i]->start();
        addrs.push_back(PeerAddress{"127.0.0.1", fleet[i]->port()});
    }
    for (std::size_t i = 0; i < 3; ++i) {
        ClusterConfig cfg;
        cfg.self = addrs[i];
        for (std::size_t j = 0; j < 3; ++j) {
            if (j != i) {
                cfg.peers.push_back(addrs[j]);
            }
        }
        cfg.replicas = 2;
        cfg.probe_interval_ms = 100;
        cfg.anti_entropy_interval_ms = 200;
        fleet[i]->enable_cluster(cfg);
    }
    {
        auto seeder = SynthClient::connect("127.0.0.1", fleet[0]->port());
        TrainSpec spec;
        spec.records = 400;
        spec.sim_seed = 11;
        spec.epochs = 2;
        spec.gan_seed = 1;
        const std::uint64_t job = seeder.fedtrain_async("churn-soak", spec);
        ASSERT_EQ(seeder.wait_for_job(job).at("state"), "done");
        const std::string golden = seeder.sample_csv("churn-soak", 64, 99);
        ASSERT_FALSE(golden.empty());
        seeder.quit();

        std::atomic<bool> stop_load{false};
        std::atomic<std::size_t> served{0};
        std::atomic<std::size_t> permanent{0};
        std::thread load([&] {
            try {
                ClientOptions copts;
                copts.reconnect_on_reset = true;
                copts.reconnect_attempts = 5;
                copts.reconnect_backoff_ms = 10;
                auto client = SynthClient::connect("127.0.0.1", addrs[0].port, copts);
                while (!stop_load.load()) {
                    try {
                        if (client.sample_csv("churn-soak", 64, 99) == golden) {
                            served.fetch_add(1);
                        } else {
                            permanent.fetch_add(1);  // bytes changed under churn
                        }
                    } catch (const Error& e) {
                        std::string_view message = e.what();
                        if (message.rfind("server: ", 0) == 0) {
                            message.remove_prefix(8);
                        }
                        if (!is_retryable_error(message)) {
                            permanent.fetch_add(1);
                        }
                    }
                }
                client.quit();
            } catch (const Error&) {
                permanent.fetch_add(1);
            }
        });

        std::uint64_t last_epoch = fleet[0]->cluster()->epoch();
        const auto converged = [&](std::uint64_t epoch, std::size_t members) {
            const auto deadline =
                std::chrono::steady_clock::now() + std::chrono::seconds(20);
            for (;;) {
                bool all = true;
                for (auto& s : fleet) {
                    all = all && s->cluster()->epoch() == epoch &&
                          s->cluster()->view().members.size() == members;
                }
                if (all) {
                    return true;
                }
                if (std::chrono::steady_clock::now() >= deadline) {
                    return false;
                }
                std::this_thread::sleep_for(std::chrono::milliseconds(20));
            }
        };
        for (int cycle = 0; cycle < 3; ++cycle) {
            ServerOptions churn_options;
            churn_options.train_workers = 2;
            SynthServer churner(churn_options);
            churner.start();
            ClusterConfig tuning;
            tuning.self = PeerAddress{"127.0.0.1", churner.port()};
            tuning.replicas = 2;
            tuning.probe_interval_ms = 100;
            tuning.anti_entropy_interval_ms = 200;
            churner.join_fleet(tuning, addrs[cycle % addrs.size()]);
            const std::uint64_t join_epoch = churner.cluster()->epoch();
            EXPECT_GT(join_epoch, last_epoch) << "cycle " << cycle;
            ASSERT_TRUE(converged(join_epoch, 4))
                << "cycle " << cycle << ": join never converged";

            Request leave;
            leave.op = Op::leave;
            leave.model = churner.cluster()->self_name();
            const Response left = churner.handle(leave);
            ASSERT_TRUE(left.ok) << left.error;
            const std::uint64_t leave_epoch = churner.cluster()->epoch();
            EXPECT_GT(leave_epoch, join_epoch) << "cycle " << cycle;
            ASSERT_TRUE(converged(leave_epoch, 3))
                << "cycle " << cycle << ": leave never converged";
            last_epoch = leave_epoch;
            churner.stop();
        }

        stop_load.store(true);
        load.join();
        EXPECT_EQ(permanent.load(), 0U)
            << "membership churn surfaced a permanent error or wrong bytes";
        EXPECT_GE(served.load(), 10U);
    }

    // The fleet ends where it started: three members, everyone agreeing,
    // golden bytes intact on every member.
    auto a = SynthClient::connect("127.0.0.1", fleet[0]->port());
    auto b = SynthClient::connect("127.0.0.1", fleet[1]->port());
    EXPECT_EQ(a.cluster().at("members"), "3");
    EXPECT_EQ(b.sample_csv("churn-soak", 64, 99), a.sample_csv("churn-soak", 64, 99));
    a.quit();
    b.quit();
    for (auto& s : fleet) {
        s->stop();
    }
}

}  // namespace
