// Tests for train/test splitting.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/data/split.hpp"

namespace {

using kinet::Rng;
using namespace kinet::data;  // NOLINT

Table labelled_table(std::size_t rows, Rng& rng) {
    Table t({ColumnMeta::continuous_column("x"),
             ColumnMeta::categorical_column("y", {"a", "b", "c"})});
    for (std::size_t r = 0; r < rows; ++r) {
        const double u = rng.uniform();
        t.append_row({static_cast<float>(r), (u < 0.7) ? 0.0F : (u < 0.95 ? 1.0F : 2.0F)});
    }
    return t;
}

TEST(Split, PartitionIsCompleteAndDisjoint) {
    Rng rng(700);
    const Table t = labelled_table(100, rng);
    const auto split = train_test_split(t, 0.25, rng);
    EXPECT_EQ(split.train.rows() + split.test.rows(), t.rows());
    // The x column is a unique row id: check disjointness through it.
    std::vector<bool> seen(100, false);
    for (std::size_t r = 0; r < split.train.rows(); ++r) {
        seen[static_cast<std::size_t>(split.train.value(r, 0))] = true;
    }
    for (std::size_t r = 0; r < split.test.rows(); ++r) {
        const auto id = static_cast<std::size_t>(split.test.value(r, 0));
        EXPECT_FALSE(seen[id]);
    }
}

TEST(Split, FractionIsRespected) {
    Rng rng(701);
    const Table t = labelled_table(1000, rng);
    const auto split = train_test_split(t, 0.3, rng);
    EXPECT_NEAR(static_cast<double>(split.test.rows()) / t.rows(), 0.3, 0.02);
}

TEST(Split, StratifiedKeepsClassProportions) {
    Rng rng(702);
    const Table t = labelled_table(2000, rng);
    const auto split = train_test_split(t, 0.25, rng, 1);
    const auto orig = t.category_counts(1);
    const auto test = split.test.category_counts(1);
    for (std::size_t k = 0; k < orig.size(); ++k) {
        if (orig[k] == 0) {
            continue;
        }
        const double orig_p = static_cast<double>(orig[k]) / t.rows();
        const double test_p = static_cast<double>(test[k]) / split.test.rows();
        EXPECT_NEAR(test_p, orig_p, 0.03);
    }
}

TEST(Split, StratifiedKeepsRareClassInTraining) {
    Rng rng(703);
    Table t({ColumnMeta::continuous_column("x"),
             ColumnMeta::categorical_column("y", {"common", "rare"})});
    for (int i = 0; i < 50; ++i) {
        t.append_row({static_cast<float>(i), 0.0F});
    }
    t.append_row({99.0F, 1.0F});  // single rare row
    const auto split = train_test_split(t, 0.5, rng, 1);
    EXPECT_EQ(split.train.category_counts(1)[1], 1U);  // rare stays in train
}

TEST(Split, RejectsBadFractions) {
    Rng rng(704);
    const Table t = labelled_table(10, rng);
    EXPECT_THROW((void)train_test_split(t, 0.0, rng), kinet::Error);
    EXPECT_THROW((void)train_test_split(t, 1.0, rng), kinet::Error);
}

}  // namespace
