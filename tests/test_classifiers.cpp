// Tests for the six NIDS classifiers on synthetic separable problems.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.hpp"
#include "src/eval/classifiers/decision_tree.hpp"
#include "src/eval/classifiers/knn.hpp"
#include "src/eval/classifiers/logistic_regression.hpp"
#include "src/eval/classifiers/mlp_classifier.hpp"
#include "src/eval/classifiers/naive_bayes.hpp"
#include "src/eval/classifiers/random_forest.hpp"

namespace {

using kinet::Rng;
using namespace kinet::eval;  // NOLINT
using Matrix = kinet::tensor::Matrix;

// Three Gaussian blobs in 2-D.
struct Blobs {
    Matrix x;
    std::vector<std::size_t> y;
};

Blobs make_blobs(std::size_t per_class, double spread, Rng& rng) {
    const double centers[3][2] = {{0.0, 0.0}, {5.0, 5.0}, {-5.0, 5.0}};
    Blobs b;
    b.x.resize(3 * per_class, 2);
    b.y.resize(3 * per_class);
    for (std::size_t k = 0; k < 3; ++k) {
        for (std::size_t i = 0; i < per_class; ++i) {
            const std::size_t r = k * per_class + i;
            b.x(r, 0) = static_cast<float>(rng.normal(centers[k][0], spread));
            b.x(r, 1) = static_cast<float>(rng.normal(centers[k][1], spread));
            b.y[r] = k;
        }
    }
    return b;
}

// XOR-style non-linear problem (defeats linear models).
Blobs make_xor(std::size_t n, Rng& rng) {
    Blobs b;
    b.x.resize(n, 2);
    b.y.resize(n);
    for (std::size_t r = 0; r < n; ++r) {
        const bool q1 = rng.bernoulli(0.5);
        const bool q2 = rng.bernoulli(0.5);
        b.x(r, 0) = static_cast<float>((q1 ? 1.0 : -1.0) + rng.normal(0.0, 0.15));
        b.x(r, 1) = static_cast<float>((q2 ? 1.0 : -1.0) + rng.normal(0.0, 0.15));
        b.y[r] = (q1 != q2) ? 1 : 0;
    }
    return b;
}

std::vector<std::unique_ptr<Classifier>> full_suite() {
    std::vector<std::unique_ptr<Classifier>> suite;
    suite.push_back(std::make_unique<DecisionTree>());
    suite.push_back(std::make_unique<RandomForest>());
    suite.push_back(std::make_unique<LogisticRegression>());
    suite.push_back(std::make_unique<Knn>());
    suite.push_back(std::make_unique<GaussianNaiveBayes>());
    suite.push_back(std::make_unique<MlpClassifier>());
    return suite;
}

TEST(Classifiers, AllSolveSeparableBlobs) {
    Rng rng(1100);
    const Blobs train = make_blobs(150, 0.7, rng);
    const Blobs test = make_blobs(60, 0.7, rng);
    for (auto& clf : full_suite()) {
        clf->fit(train.x, train.y, 3);
        const auto pred = clf->predict(test.x);
        EXPECT_GT(accuracy(pred, test.y), 0.9) << clf->name();
        EXPECT_GT(macro_f1(pred, test.y, 3), 0.9) << clf->name();
    }
}

TEST(Classifiers, NonLinearModelsSolveXorLinearOnesCannot) {
    Rng rng(1101);
    const Blobs train = make_xor(500, rng);
    const Blobs test = make_xor(200, rng);

    DecisionTree tree;
    tree.fit(train.x, train.y, 2);
    EXPECT_GT(accuracy(tree.predict(test.x), test.y), 0.95);

    MlpClassifier mlp;
    mlp.fit(train.x, train.y, 2);
    EXPECT_GT(accuracy(mlp.predict(test.x), test.y), 0.9);

    LogisticRegression logreg;
    logreg.fit(train.x, train.y, 2);
    EXPECT_LT(accuracy(logreg.predict(test.x), test.y), 0.75);  // linear limit
}

TEST(DecisionTree, RespectsDepthLimit) {
    Rng rng(1102);
    const Blobs train = make_blobs(100, 1.5, rng);
    DecisionTreeOptions opts;
    opts.max_depth = 1;
    DecisionTree stump(opts);
    stump.fit(train.x, train.y, 3);
    EXPECT_LE(stump.node_count(), 3U);  // root + two leaves
}

TEST(DecisionTree, HandlesSingleClassGracefully) {
    Matrix x(10, 2, 1.0F);
    const std::vector<std::size_t> y(10, 1);
    DecisionTree tree;
    tree.fit(x, y, 3);
    const auto pred = tree.predict(x);
    for (std::size_t p : pred) {
        EXPECT_EQ(p, 1U);
    }
}

TEST(RandomForest, BeatsSingleStumpOnNoisyData) {
    Rng rng(1103);
    const Blobs train = make_blobs(150, 2.5, rng);
    const Blobs test = make_blobs(80, 2.5, rng);

    DecisionTreeOptions stump_opts;
    stump_opts.max_depth = 2;
    DecisionTree stump(stump_opts);
    stump.fit(train.x, train.y, 3);

    RandomForest forest;
    forest.fit(train.x, train.y, 3);

    EXPECT_GE(accuracy(forest.predict(test.x), test.y),
              accuracy(stump.predict(test.x), test.y));
}

TEST(Knn, SubsamplesLargeTrainingSets) {
    Rng rng(1104);
    const Blobs train = make_blobs(3000, 0.7, rng);  // 9000 rows > cap
    KnnOptions opts;
    opts.max_train_rows = 1000;
    Knn knn(opts);
    knn.fit(train.x, train.y, 3);
    const Blobs test = make_blobs(50, 0.7, rng);
    EXPECT_GT(accuracy(knn.predict(test.x), test.y), 0.9);
}

TEST(NaiveBayes, HandlesClassAbsentFromTraining) {
    Rng rng(1105);
    const Blobs train = make_blobs(100, 0.5, rng);
    GaussianNaiveBayes nb;
    nb.fit(train.x, train.y, 5);  // classes 3, 4 never seen
    const auto pred = nb.predict(train.x);
    for (std::size_t p : pred) {
        EXPECT_LT(p, 3U);  // never predicts unseen classes
    }
}

TEST(Metrics, AccuracyAndMacroF1EdgeCases) {
    const std::vector<std::size_t> truth = {0, 0, 1, 1};
    const std::vector<std::size_t> perfect = truth;
    const std::vector<std::size_t> inverted = {1, 1, 0, 0};
    EXPECT_DOUBLE_EQ(accuracy(perfect, truth), 1.0);
    EXPECT_DOUBLE_EQ(accuracy(inverted, truth), 0.0);
    EXPECT_DOUBLE_EQ(macro_f1(perfect, truth, 2), 1.0);
    EXPECT_DOUBLE_EQ(macro_f1(inverted, truth, 2), 0.0);
}

}  // namespace
