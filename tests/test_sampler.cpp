// Tests for training-by-sampling (conditional sampler).
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/data/sampler.hpp"

namespace {

using kinet::Rng;
using namespace kinet::data;  // NOLINT

// 90/9/1 imbalanced table.
Table imbalanced_table(std::size_t rows, Rng& rng) {
    Table t({
        ColumnMeta::categorical_column("cls", {"common", "minor", "rare"}),
        ColumnMeta::continuous_column("x"),
        ColumnMeta::categorical_column("aux", {"a", "b"}),
    });
    for (std::size_t r = 0; r < rows; ++r) {
        const double u = rng.uniform();
        const float cls = (u < 0.90) ? 0.0F : (u < 0.99 ? 1.0F : 2.0F);
        t.append_row({cls, static_cast<float>(rng.normal()), rng.bernoulli(0.5) ? 1.0F : 0.0F});
    }
    return t;
}

TEST(Sampler, DrawReturnsConsistentRowAndValues) {
    Rng rng(600);
    const Table t = imbalanced_table(500, rng);
    const ConditionalSampler sampler(t, {0, 2});
    for (int i = 0; i < 200; ++i) {
        const auto draw = sampler.draw(rng);
        ASSERT_EQ(draw.values.size(), 2U);
        // The anchored value must be the anchored column's value of the row.
        EXPECT_EQ(draw.values[draw.anchor_column], draw.anchor_value);
        // And every reported value matches the real row.
        EXPECT_EQ(draw.values[0], t.category_at(draw.row, 0));
        EXPECT_EQ(draw.values[1], t.category_at(draw.row, 2));
    }
}

TEST(Sampler, MinorityBoostOversamplesRareValues) {
    Rng rng(601);
    const Table t = imbalanced_table(2000, rng);

    SamplerOptions boosted;
    boosted.uniform_minority_prob = 0.8;
    const ConditionalSampler with_boost(t, {0}, boosted);

    SamplerOptions plain;
    plain.uniform_minority_prob = 0.0;
    const ConditionalSampler no_boost(t, {0}, plain);

    auto rare_fraction = [&rng](const ConditionalSampler& s) {
        std::size_t rare = 0;
        const int n = 3000;
        for (int i = 0; i < n; ++i) {
            rare += (s.draw(rng).values[0] == 2) ? 1 : 0;
        }
        return static_cast<double>(rare) / n;
    };

    const double boosted_rate = rare_fraction(with_boost);
    const double plain_rate = rare_fraction(no_boost);
    // Log-frequency sampling already flattens the 90/9/1 imbalance to
    // roughly proportional-to-log counts; the uniform boost must lift the
    // rare class clearly further, towards the uniform 1/3.
    EXPECT_GT(boosted_rate, 0.25);
    EXPECT_GT(boosted_rate, plain_rate + 0.05);
}

TEST(Sampler, EmpiricalDrawMatchesDataDistribution) {
    Rng rng(602);
    const Table t = imbalanced_table(3000, rng);
    const ConditionalSampler sampler(t, {0});
    std::vector<std::size_t> counts(3, 0);
    const int n = 6000;
    for (int i = 0; i < n; ++i) {
        ++counts[sampler.draw_empirical(rng).values[0]];
    }
    const auto data_counts = t.category_counts(0);
    for (std::size_t k = 0; k < 3; ++k) {
        const double data_p = static_cast<double>(data_counts[k]) / t.rows();
        const double draw_p = static_cast<double>(counts[k]) / n;
        EXPECT_NEAR(draw_p, data_p, 0.03);
    }
}

TEST(Sampler, RejectsContinuousConditionalColumn) {
    Rng rng(603);
    const Table t = imbalanced_table(100, rng);
    EXPECT_THROW(ConditionalSampler(t, {1}), kinet::Error);
}

TEST(Sampler, RejectsEmptyConfiguration) {
    Rng rng(604);
    const Table t = imbalanced_table(100, rng);
    EXPECT_THROW(ConditionalSampler(t, {}), kinet::Error);
}

TEST(Sampler, NeverReturnsValueAbsentFromData) {
    Rng rng(605);
    // Schema declares 3 classes but the data only contains two.
    Table t({ColumnMeta::categorical_column("cls", {"a", "b", "never"}),
             ColumnMeta::continuous_column("x")});
    for (int i = 0; i < 200; ++i) {
        t.append_row({rng.bernoulli(0.3) ? 1.0F : 0.0F, 0.0F});
    }
    const ConditionalSampler sampler(t, {0});
    for (int i = 0; i < 500; ++i) {
        EXPECT_NE(sampler.draw(rng).values[0], 2U);
    }
}

}  // namespace
