// Service-layer tests: protocol parsing, the model registry under concurrent
// access, the request handler, and the full TCP path with concurrent clients
// drawing deterministic per-request sample streams.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/csv.hpp"
#include "src/core/kinetgan.hpp"
#include "src/netsim/lab_simulator.hpp"
#include "src/service/client.hpp"
#include "src/service/protocol.hpp"
#include "src/service/registry.hpp"
#include "src/service/server.hpp"

namespace {

using namespace kinet;        // NOLINT
using namespace kinet::service;  // NOLINT

// ---------------------------------------------------------------- protocol

TEST(Protocol, ParsesSampleRequest) {
    const Request r = parse_request("SAMPLE site-0 500 seed=17 cond=protocol:TCP");
    EXPECT_EQ(r.op, Op::sample);
    EXPECT_EQ(r.model, "site-0");
    ASSERT_EQ(r.positional.size(), 1U);
    EXPECT_EQ(r.positional[0], "500");
    EXPECT_EQ(r.kv.at("seed"), "17");
    EXPECT_EQ(r.kv.at("cond"), "protocol:TCP");
}

TEST(Protocol, OpsAreCaseInsensitiveAndWhitespaceTolerant) {
    const Request r = parse_request("  train   site-1   epochs=5  ");
    EXPECT_EQ(r.op, Op::train);
    EXPECT_EQ(r.model, "site-1");
    EXPECT_EQ(r.kv.at("epochs"), "5");
}

TEST(Protocol, StatsModelIsOptional) {
    EXPECT_TRUE(parse_request("STATS").model.empty());
    EXPECT_EQ(parse_request("STATS site-2").model, "site-2");
}

TEST(Protocol, RejectsMalformedRequests) {
    EXPECT_THROW((void)parse_request(""), Error);
    EXPECT_THROW((void)parse_request("FROBNICATE x"), Error);
    EXPECT_THROW((void)parse_request("SAMPLE"), Error);          // missing model
    EXPECT_THROW((void)parse_request("SAMPLE site-0"), Error);   // missing count
    EXPECT_THROW((void)parse_request("LOAD site-0"), Error);     // missing path
    EXPECT_THROW((void)parse_request("SAMPLE seed=1 5"), Error);  // kv where model expected
}

TEST(Protocol, RequestFormatRoundTrips) {
    Request r;
    r.op = Op::sample;
    r.model = "m";
    r.positional.push_back("64");
    r.kv["seed"] = "9";
    const Request parsed = parse_request(format_request(r));
    EXPECT_EQ(parsed.op, r.op);
    EXPECT_EQ(parsed.model, r.model);
    EXPECT_EQ(parsed.positional, r.positional);
    EXPECT_EQ(parsed.kv, r.kv);
}

TEST(Protocol, ResponseFraming) {
    Response ok;
    ok.payload = "a,b\n1,2\n";
    EXPECT_EQ(format_response(ok), "OK 8\na,b\n1,2\n");
    Response err;
    err.ok = false;
    err.error = "bad\nthing";
    EXPECT_EQ(format_response(err), "ERR bad thing\n");  // newline sanitised
}

TEST(Protocol, TypedKvHelpers) {
    const Request r = parse_request("VALIDATE m n=250 frac=0.5 bad=zz");
    EXPECT_EQ(kv_u64(r, "n", 1), 250U);
    EXPECT_EQ(kv_u64(r, "absent", 7), 7U);
    EXPECT_DOUBLE_EQ(kv_double(r, "frac", 0.0), 0.5);
    EXPECT_THROW((void)kv_u64(r, "bad", 0), Error);
    EXPECT_EQ(kv_string(r, "bad", ""), "zz");
    EXPECT_EQ(kv_string(r, "absent", "dflt"), "dflt");
}

TEST(Protocol, KvDoubleRejectsNonFiniteValues) {
    // std::stod parses all of these happily; a nan attack= would poison the
    // fit silently, so the protocol layer must reject them.
    for (const char* bad : {"nan", "NaN", "inf", "-inf", "INF", "1e999", "-1e999"}) {
        const Request r = parse_request(std::string("TRAIN m attack=") + bad);
        EXPECT_THROW((void)kv_double(r, "attack", 1.0), Error) << bad;
    }
    const Request ok = parse_request("TRAIN m attack=-2.5");
    EXPECT_DOUBLE_EQ(kv_double(ok, "attack", 1.0), -2.5);  // finite: parse-level OK
}

TEST(Protocol, QueueFullHelpers) {
    const Response r = queue_full_response("request queue at capacity (8); retry");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(is_queue_full_message(r.error)) << r.error;
    // The client prepends "server: " when surfacing ERR responses; the
    // matcher must see through it so retry loops can classify the throw.
    EXPECT_TRUE(is_queue_full_message("server: " + r.error));
    EXPECT_FALSE(is_queue_full_message("no model named queue_full"));
    EXPECT_FALSE(is_queue_full_message("server: something else"));
}

TEST(Protocol, ParsesJobOps) {
    const Request poll = parse_request("POLL 17");
    EXPECT_EQ(poll.op, Op::poll);
    EXPECT_TRUE(poll.model.empty());
    ASSERT_EQ(poll.positional.size(), 1U);
    EXPECT_EQ(poll.positional[0], "17");
    EXPECT_EQ(parse_request("CANCEL 3").op, Op::cancel);
    EXPECT_EQ(parse_request("JOBS").op, Op::jobs);
    EXPECT_THROW((void)parse_request("POLL"), Error);    // missing job id
    EXPECT_THROW((void)parse_request("CANCEL"), Error);  // missing job id
}

// ---------------------------------------------------------------- fixtures

core::KiNetGanOptions tiny_options(std::uint64_t seed) {
    core::KiNetGanOptions opts;
    opts.gan.epochs = 2;
    opts.gan.batch_size = 64;
    opts.gan.hidden_dim = 32;
    opts.gan.noise_dim = 16;
    opts.gan.seed = seed;
    opts.transformer.max_modes = 3;
    return opts;
}

std::unique_ptr<core::KiNetGan> tiny_model(std::uint64_t seed = 1) {
    netsim::LabSimOptions sim;
    sim.records = 400;
    sim.seed = 11;
    const auto table = netsim::LabTrafficSimulator(sim).generate();
    const auto kg = kg::NetworkKg::build_lab();
    auto model = std::make_unique<core::KiNetGan>(
        kg.make_oracle(), netsim::lab_conditional_columns(), tiny_options(seed));
    model->fit(table);
    return model;
}

// ---------------------------------------------------------------- registry

TEST(ModelRegistry, PutGetEraseNames) {
    ModelRegistry registry;
    EXPECT_EQ(registry.size(), 0U);
    EXPECT_EQ(registry.get("a"), nullptr);
    registry.put("b", tiny_model(2));
    registry.put("a", tiny_model(3));
    EXPECT_EQ(registry.size(), 2U);
    EXPECT_NE(registry.get("a"), nullptr);
    EXPECT_EQ(registry.names(), (std::vector<std::string>{"a", "b"}));
    EXPECT_TRUE(registry.erase("a"));
    EXPECT_FALSE(registry.erase("a"));
    EXPECT_EQ(registry.size(), 1U);
}

TEST(ModelRegistry, RejectsUnfittedModels) {
    ModelRegistry registry;
    const auto kg = kg::NetworkKg::build_lab();
    auto unfitted = std::make_unique<core::KiNetGan>(
        kg.make_oracle(), netsim::lab_conditional_columns(), tiny_options(1));
    EXPECT_THROW(registry.put("x", std::move(unfitted)), Error);
    EXPECT_THROW(registry.put("", tiny_model()), Error);
}

TEST(ModelRegistry, ConcurrentReadersAndWritersStaySane) {
    ModelRegistry registry;
    registry.put("shared", tiny_model(4));
    // A get()ed entry must stay valid even when the name is concurrently
    // replaced — readers hold the shared_ptr, not the map slot.
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> lookups{0};
    std::vector<std::thread> readers;
    readers.reserve(4);
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&] {
            while (!stop.load()) {
                auto entry = registry.get("shared");
                ASSERT_NE(entry, nullptr);
                const kinet::MutexLock lock(entry->mu);
                ASSERT_TRUE(entry->model->is_fitted());
                lookups.fetch_add(1);
            }
        });
    }
    for (int i = 0; i < 3; ++i) {
        registry.put("shared", tiny_model(5 + static_cast<std::uint64_t>(i)));
    }
    stop.store(true);
    for (auto& t : readers) {
        t.join();
    }
    EXPECT_GT(lookups.load(), 0U);
}

TEST(ModelRegistry, MemoryBudgetEvictsLeastRecentlyUsed) {
    auto a = tiny_model(2);
    auto b = tiny_model(3);
    auto c = tiny_model(4);
    ModelRegistry registry;
    registry.put("a", std::move(a));
    const std::uint64_t one = registry.memory_bytes();
    ASSERT_GT(one, 0U);
    // Room for two models of this shape, not three.
    registry.set_limits(one * 2 + one / 2, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    registry.put("b", std::move(b));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_NE(registry.get("a"), nullptr);  // refresh a: b becomes the LRU
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    registry.put("c", std::move(c));
    EXPECT_EQ(registry.size(), 2U);
    EXPECT_EQ(registry.get("b"), nullptr) << "LRU entry should have been evicted";
    EXPECT_NE(registry.get("a"), nullptr);
    EXPECT_NE(registry.get("c"), nullptr);
    EXPECT_EQ(registry.evictions(), 1U);
    EXPECT_LE(registry.memory_bytes(), one * 2 + one / 2);
}

TEST(ModelRegistry, BudgetNeverEvictsTheJustRegisteredModel) {
    ModelRegistry registry;
    registry.set_limits(1, 0);  // absurdly small: every model exceeds it
    registry.put("only", tiny_model(2));
    EXPECT_NE(registry.get("only"), nullptr);
    registry.put("next", tiny_model(3));
    // The newcomer survives; the previous sole occupant is the victim.
    EXPECT_EQ(registry.size(), 1U);
    EXPECT_NE(registry.get("next"), nullptr);
    EXPECT_EQ(registry.get("only"), nullptr);
}

TEST(ModelRegistry, TtlExpiresIdleEntriesAndKeepsBusyOnes) {
    auto old_model = tiny_model(2);
    auto fresh_model = tiny_model(3);
    ModelRegistry registry;
    registry.set_limits(0, 40);
    registry.put("old", std::move(old_model));
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    registry.put("fresh", std::move(fresh_model));
    EXPECT_EQ(registry.evict_expired(), 1U);
    EXPECT_EQ(registry.get("old"), nullptr);
    EXPECT_NE(registry.get("fresh"), nullptr);
    EXPECT_EQ(registry.evictions(), 1U);
    // A get() refreshes the clock, so a touched entry survives the sweep.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_NE(registry.get("fresh"), nullptr);
    EXPECT_EQ(registry.evict_expired(), 0U);
}

TEST(ModelRegistry, EraseAndReplaceKeepByteAccountingConsistent) {
    // Differently-seeded models serialize to slightly different sizes, so
    // the test tracks the accounting by differences, not by equal sizes.
    ModelRegistry registry;
    registry.put("m", tiny_model(2));
    const std::uint64_t first = registry.memory_bytes();
    ASSERT_GT(first, 0U);
    registry.put("m", tiny_model(3));  // replace, not accumulate
    const std::uint64_t replaced = registry.memory_bytes();
    EXPECT_GT(replaced, 0U);
    EXPECT_LT(replaced, first * 2) << "replacement double-counted";
    registry.put("n", tiny_model(4));
    const std::uint64_t both = registry.memory_bytes();
    EXPECT_GT(both, replaced);
    EXPECT_TRUE(registry.erase("n"));
    EXPECT_EQ(registry.memory_bytes(), replaced);
    EXPECT_TRUE(registry.erase("m"));
    EXPECT_EQ(registry.memory_bytes(), 0U);
}

// ------------------------------------------------------------ stream cursor

TEST(StreamCursor, PullMatchesPushStreamForAnyChunkSize) {
    const auto model = tiny_model(6);
    constexpr std::size_t kRows = 333;
    constexpr std::uint64_t kSeed = 77;

    std::string pushed;
    std::uint64_t pushed_rows = 0;
    model->sample_seeded_stream(kRows, kSeed, 0, [&](const data::Table& chunk) {
        csv::serialize_append(chunk.to_csv(), pushed_rows == 0, pushed);
        pushed_rows += chunk.rows();
    });
    ASSERT_EQ(pushed_rows, kRows);

    for (const std::size_t chunk_rows :
         {std::size_t{1}, std::size_t{7}, std::size_t{64}, std::size_t{1000}}) {
        auto cursor = model->open_sample_cursor(kRows, kSeed, chunk_rows);
        std::string pulled;
        std::size_t chunks = 0;
        std::size_t rows = 0;
        while (const data::Table* chunk = cursor->next()) {
            if (rows + chunk->rows() < kRows) {
                EXPECT_EQ(chunk->rows(), chunk_rows) << "only the last chunk may be short";
            }
            csv::serialize_append(chunk->to_csv(), chunks == 0, pulled);
            rows += chunk->rows();
            ++chunks;
        }
        EXPECT_EQ(rows, kRows) << "chunk=" << chunk_rows;
        EXPECT_EQ(pulled, pushed) << "chunk=" << chunk_rows;
        EXPECT_EQ(cursor->next(), nullptr) << "exhausted cursor must stay exhausted";
    }
}

TEST(StreamCursor, ConditionalPullMatchesConditionalPush) {
    const auto model = tiny_model(6);
    constexpr std::size_t kRows = 96;
    std::string pushed;
    std::uint64_t pushed_rows = 0;
    model->sample_conditional_seeded_stream(
        kRows, "protocol", "TCP", 5, 0, [&](const data::Table& chunk) {
            csv::serialize_append(chunk.to_csv(), pushed_rows == 0, pushed);
            pushed_rows += chunk.rows();
        });
    auto cursor = model->open_sample_cursor(kRows, 5, 30, "protocol", "TCP");
    std::string pulled;
    std::size_t chunks = 0;
    while (const data::Table* chunk = cursor->next()) {
        csv::serialize_append(chunk->to_csv(), chunks == 0, pulled);
        ++chunks;
    }
    EXPECT_EQ(pulled, pushed);
}

TEST(StreamCursor, RejectsBadArguments) {
    const auto model = tiny_model(6);
    EXPECT_THROW((void)model->open_sample_cursor(10, 1, 0), Error);  // chunk >= 1
    EXPECT_THROW((void)model->open_sample_cursor(10, 1, 8, "protocol", "NOPE"), Error);
}

// ----------------------------------------------------------------- server

/// Shared server fixture: TRAINs one small model once for the whole suite.
class ServerTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        ServerOptions options;
        // Client-supplied snapshot paths are confined to this directory.
        options.snapshot_dir = ::testing::TempDir();
        server_ = new SynthServer(options);
        server_->start();
        const Request train = parse_request(
            "TRAIN site-0 records=400 sim-seed=11 epochs=2 gan-seed=1");
        const Response r = server_->handle(train);
        ASSERT_TRUE(r.ok) << r.error;
    }
    static void TearDownTestSuite() {
        delete server_;
        server_ = nullptr;
    }

    static SynthServer* server_;
};

SynthServer* ServerTest::server_ = nullptr;

TEST_F(ServerTest, PingAndStats) {
    EXPECT_EQ(server_->handle(parse_request("PING")).payload, "pong\n");
    const Response stats = server_->handle(parse_request("STATS site-0"));
    ASSERT_TRUE(stats.ok);
    const auto kv = parse_kv_payload(stats.payload);
    EXPECT_EQ(kv.at("epochs_trained"), "2");
    const Response global = server_->handle(parse_request("STATS"));
    EXPECT_NE(global.payload.find("models=1"), std::string::npos);
}

TEST_F(ServerTest, SampleIsDeterministicPerSeed) {
    const Request req = parse_request("SAMPLE site-0 100 seed=21");
    const Response a = server_->handle(req);
    const Response b = server_->handle(req);
    ASSERT_TRUE(a.ok) << a.error;
    EXPECT_EQ(a.payload, b.payload);  // same seed, same stream
    const Response c = server_->handle(parse_request("SAMPLE site-0 100 seed=22"));
    EXPECT_NE(a.payload, c.payload);  // different seed, different stream
    EXPECT_EQ(csv::parse(a.payload).rows.size(), 100U);
}

TEST_F(ServerTest, ConditionalSampleAndValidate) {
    const Response cond =
        server_->handle(parse_request("SAMPLE site-0 50 seed=3 cond=protocol:TCP"));
    ASSERT_TRUE(cond.ok) << cond.error;
    EXPECT_EQ(csv::parse(cond.payload).rows.size(), 50U);
    const Response bad =
        server_->handle(parse_request("SAMPLE site-0 50 seed=3 cond=nonsense"));
    EXPECT_FALSE(bad.ok);

    const Response val = server_->handle(parse_request("VALIDATE site-0 n=200 seed=5"));
    ASSERT_TRUE(val.ok) << val.error;
    const auto kv = parse_kv_payload(val.payload);
    const double validity = std::stod(kv.at("validity"));
    EXPECT_GE(validity, 0.0);
    EXPECT_LE(validity, 1.0);
}

TEST_F(ServerTest, ErrorsComeBackAsErrResponses) {
    EXPECT_FALSE(server_->handle(parse_request("SAMPLE ghost 10")).ok);
    EXPECT_FALSE(server_->handle(parse_request("SAMPLE site-0 nonsense")).ok);
    EXPECT_FALSE(server_->handle(parse_request("DROP ghost")).ok);
    EXPECT_FALSE(server_->handle(parse_request("LOAD ghost /nonexistent.snap")).ok);
    // Hostile row counts must be rejected up front, not ground through:
    // "-1" would wrap to 2^64-1 under a lax stoull parse.
    EXPECT_FALSE(server_->handle(parse_request("SAMPLE site-0 -1")).ok);
    EXPECT_FALSE(server_->handle(parse_request("SAMPLE site-0 100garbage")).ok);
    EXPECT_FALSE(server_->handle(parse_request("SAMPLE site-0 980000000000")).ok);
    EXPECT_FALSE(server_->handle(parse_request("VALIDATE site-0 n=980000000000")).ok);
}

TEST_F(ServerTest, SnapshotRoundTripThroughServer) {
    // Relative path, resolved inside the server's snapshot_dir.
    const std::string name = "kinet_service_roundtrip.snap";
    ASSERT_TRUE(server_->handle(parse_request("SAVE site-0 " + name)).ok);
    ASSERT_TRUE(server_->handle(parse_request("LOAD site-0-copy " + name)).ok);
    // Identical stream seed -> identical CSV from original and restored model.
    const Response a = server_->handle(parse_request("SAMPLE site-0 80 seed=900"));
    const Response b = server_->handle(parse_request("SAMPLE site-0-copy 80 seed=900"));
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.payload, b.payload);
    ASSERT_TRUE(server_->handle(parse_request("DROP site-0-copy")).ok);
    std::remove((::testing::TempDir() + name).c_str());
}

TEST_F(ServerTest, SnapshotPathsAreConfinedToSnapshotDir) {
    // LOAD/SAVE take client-supplied paths; without confinement they are an
    // arbitrary filesystem read/write primitive.
    const Response abs = server_->handle(parse_request("SAVE site-0 /tmp/evil.snap"));
    ASSERT_FALSE(abs.ok);
    EXPECT_NE(abs.error.find("absolute"), std::string::npos) << abs.error;
    const Response dotdot = server_->handle(parse_request("SAVE site-0 ../evil.snap"));
    ASSERT_FALSE(dotdot.ok);
    EXPECT_NE(dotdot.error.find("escapes"), std::string::npos) << dotdot.error;
    EXPECT_FALSE(server_->handle(parse_request("SAVE site-0 a/../../evil.snap")).ok);
    EXPECT_FALSE(server_->handle(parse_request("LOAD m /etc/passwd")).ok);
    EXPECT_FALSE(server_->handle(parse_request("LOAD m ../../etc/passwd")).ok);
    // Nested relative paths inside the directory stay allowed (the missing
    // subdirectory makes SAVE fail at I/O, not at confinement).
    const Response nested = server_->handle(parse_request("LOAD m sub/dir/none.snap"));
    ASSERT_FALSE(nested.ok);
    EXPECT_EQ(nested.error.find("escapes"), std::string::npos) << nested.error;
    EXPECT_EQ(nested.error.find("absolute"), std::string::npos) << nested.error;
}

TEST_F(ServerTest, TrainRejectsHostileArguments) {
    EXPECT_FALSE(server_->handle(parse_request("TRAIN m attack=nan epochs=1")).ok);
    EXPECT_FALSE(server_->handle(parse_request("TRAIN m attack=inf epochs=1")).ok);
    EXPECT_FALSE(server_->handle(parse_request("TRAIN m attack=-1 epochs=1")).ok);
    EXPECT_FALSE(server_->handle(parse_request("TRAIN m split-frac=1.0 epochs=1")).ok);
    EXPECT_FALSE(server_->handle(parse_request("TRAIN m split-frac=-0.1 epochs=1")).ok);
    EXPECT_FALSE(server_->handle(parse_request("TRAIN m split-frac=nan epochs=1")).ok);
    EXPECT_FALSE(server_->handle(parse_request("TRAIN m epochs=0")).ok);
    EXPECT_FALSE(server_->handle(parse_request("TRAIN m domain=ponies epochs=1")).ok);
    EXPECT_FALSE(server_->handle(parse_request("TRAIN m source=ftp:x epochs=1")).ok);
    EXPECT_FALSE(server_->handle(parse_request("TRAIN m source=csv:/etc/passwd epochs=1")).ok);
    EXPECT_FALSE(server_->handle(parse_request("TRAIN m source=csv:../x.csv epochs=1")).ok);
}

TEST_F(ServerTest, ConcurrentClientsGetDeterministicStreamsOverTcp) {
    constexpr std::size_t kClients = 5;  // >= 4 per the acceptance criteria
    constexpr std::size_t kRows = 60;

    // Reference payloads, fetched serially first.
    std::vector<std::string> expected(kClients);
    {
        auto client = SynthClient::connect("127.0.0.1", server_->port());
        for (std::size_t c = 0; c < kClients; ++c) {
            expected[c] = client.sample_csv("site-0", kRows, 1000 + c);
        }
        client.quit();
    }

    // Now the same requests race from concurrent connections; every client
    // must still receive exactly its seed's stream.
    std::vector<std::string> actual(kClients);
    std::vector<std::string> failures(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            try {
                auto client = SynthClient::connect("127.0.0.1", server_->port());
                client.ping();
                actual[c] = client.sample_csv("site-0", kRows, 1000 + c);
                (void)client.validate("site-0", 50, c);  // interleave other ops
                client.quit();
            } catch (const std::exception& e) {
                failures[c] = e.what();
            }
        });
    }
    for (auto& t : clients) {
        t.join();
    }
    for (std::size_t c = 0; c < kClients; ++c) {
        ASSERT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
        EXPECT_EQ(actual[c], expected[c]) << "client " << c << " got a different stream";
    }
}

TEST_F(ServerTest, StreamingSampleReassemblesToTheFramedResponse) {
    constexpr std::size_t kRows = 150;
    auto client = SynthClient::connect("127.0.0.1", server_->port());
    const std::string framed = client.sample_csv("site-0", kRows, 77);

    // The streamed chunks must concatenate to the byte-identical CSV, for
    // any chunk size, with the header only in the first chunk.
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{40}, std::size_t{64},
                                    std::size_t{1000}}) {
        std::string reassembled;
        std::size_t chunks = 0;
        const std::uint64_t rows = client.sample_stream(
            "site-0", kRows, 77,
            [&](const std::string& part) {
                if (chunks > 0) {
                    EXPECT_EQ(part.find("src_device"), std::string::npos)
                        << "header repeated in chunk " << chunks;
                }
                reassembled += part;
                ++chunks;
            },
            chunk);
        EXPECT_EQ(rows, kRows) << "chunk=" << chunk;
        EXPECT_EQ(reassembled, framed) << "chunk=" << chunk;
    }
    // Conditional streaming matches the framed conditional response too.
    const std::string cond_framed = client.sample_csv("site-0", 64, 9, "protocol:TCP");
    std::string cond_streamed;
    (void)client.sample_stream(
        "site-0", 64, 9, [&](const std::string& part) { cond_streamed += part; }, 30,
        "protocol:TCP");
    EXPECT_EQ(cond_streamed, cond_framed);
    client.quit();
}

TEST_F(ServerTest, StreamingSampleErrorsAndConnectionReuse) {
    auto client = SynthClient::connect("127.0.0.1", server_->port());
    // Pre-stream failures arrive as ordinary ERR responses…
    EXPECT_THROW((void)client.sample_stream(
                     "ghost", 10, 1, [](const std::string&) {}),
                 Error);
    EXPECT_THROW((void)client.sample_stream(
                     "site-0", 10, 1, [](const std::string&) {}, /*chunk_rows=*/0,
                     "cond-without-colon"),
                 Error);
    // …and the connection keeps serving afterwards, streaming included.
    client.ping();
    std::string csv_text;
    EXPECT_EQ(client.sample_stream("site-0", 25, 3,
                                   [&](const std::string& part) { csv_text += part; }),
              25U);
    EXPECT_EQ(csv::parse(csv_text).rows.size(), 25U);
    // A zero-row stream still carries a well-formed trailer.
    std::size_t calls = 0;
    EXPECT_EQ(client.sample_stream("site-0", 0, 3,
                                   [&](const std::string&) { ++calls; }),
              0U);
    EXPECT_EQ(calls, 0U);
    client.quit();
}

TEST_F(ServerTest, StreamingLiftsTheRowCapButBoundsChunks) {
    // 980000000000 rows is rejected on the framed path (memory cap) but
    // accepted by the parser on the streaming path — don't actually pull
    // it; just check the cap message steers to stream=1 and that hostile
    // chunk sizes are rejected up front.
    const Response capped = server_->handle(parse_request("SAMPLE site-0 980000000000"));
    ASSERT_FALSE(capped.ok);
    EXPECT_NE(capped.error.find("stream=1"), std::string::npos) << capped.error;

    auto stream = TcpStream::connect("127.0.0.1", server_->port());
    stream.write_all("SAMPLE site-0 10 stream=1 chunk=0\n");
    auto err = stream.read_line();
    ASSERT_TRUE(err.has_value());
    EXPECT_TRUE(err->rfind("ERR ", 0) == 0) << *err;
    stream.write_all("SAMPLE site-0 10 stream=1 chunk=980000000000\n");
    err = stream.read_line();
    ASSERT_TRUE(err.has_value());
    EXPECT_TRUE(err->rfind("ERR ", 0) == 0) << *err;
    stream.write_all("QUIT\n");
}

TEST_F(ServerTest, ConcurrentStreamingClientsShareOneModelSnapshot) {
    constexpr std::size_t kClients = 4;
    constexpr std::size_t kRows = 90;
    std::vector<std::string> expected(kClients);
    {
        auto client = SynthClient::connect("127.0.0.1", server_->port());
        for (std::size_t c = 0; c < kClients; ++c) {
            expected[c] = client.sample_csv("site-0", kRows, 4000 + c);
        }
        client.quit();
    }
    std::vector<std::string> actual(kClients);
    std::vector<std::string> failures(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            try {
                auto client = SynthClient::connect("127.0.0.1", server_->port());
                (void)client.sample_stream(
                    "site-0", kRows, 4000 + c,
                    [&](const std::string& part) { actual[c] += part; },
                    /*chunk_rows=*/32);
                client.quit();
            } catch (const std::exception& e) {
                failures[c] = e.what();
            }
        });
    }
    for (auto& t : clients) {
        t.join();
    }
    for (std::size_t c = 0; c < kClients; ++c) {
        ASSERT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
        EXPECT_EQ(actual[c], expected[c]) << "client " << c;
    }
}

TEST_F(ServerTest, ManyConcurrentMultiBatchFramedSamplesDoNotExhaustThePool) {
    // Framed SAMPLE handlers run as submitted pool tasks.  The sampler's
    // look-ahead RNG producer (engaged when n spans multiple generation
    // batches) must therefore run inline for them — a submitted task
    // waiting on another submitted task is the deadlock the ThreadPool
    // contract forbids, and enough concurrent multi-batch requests to
    // occupy every worker used to hang exactly here.
    constexpr std::size_t kClients = 8;
    constexpr std::size_t kRows = 300;  // > batch_size: multiple generation batches
    std::string expected;
    {
        auto client = SynthClient::connect("127.0.0.1", server_->port());
        expected = client.sample_csv("site-0", kRows, 31337);
        client.quit();
    }
    std::vector<std::string> actual(kClients);
    std::vector<std::string> failures(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            try {
                auto client = SynthClient::connect("127.0.0.1", server_->port());
                actual[c] = client.sample_csv("site-0", kRows, 31337);
                client.quit();
            } catch (const std::exception& e) {
                failures[c] = e.what();
            }
        });
    }
    for (auto& t : clients) {
        t.join();
    }
    for (std::size_t c = 0; c < kClients; ++c) {
        ASSERT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
        EXPECT_EQ(actual[c], expected) << "client " << c;
    }
}

TEST_F(ServerTest, TcpProtocolErrorsDoNotKillTheConnection) {
    auto stream = TcpStream::connect("127.0.0.1", server_->port());
    stream.write_all("NOT-AN-OP\n");
    auto err = stream.read_line();
    ASSERT_TRUE(err.has_value());
    EXPECT_TRUE(err->rfind("ERR ", 0) == 0) << *err;
    // The connection survives and serves the next request.
    stream.write_all("PING\n");
    auto ok = stream.read_line();
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(*ok, "OK 5");
    (void)stream.read_exact(5);
    stream.write_all("QUIT\n");
}

TEST_F(ServerTest, GlobalStatsExposesTheMetricsSurface) {
    // Generate some traffic so the op histograms have content.
    auto client = SynthClient::connect("127.0.0.1", server_->port());
    client.ping();
    (void)client.sample_csv("site-0", 20, 1);
    const Response global = server_->handle(parse_request("STATS"));
    ASSERT_TRUE(global.ok);
    const auto kv = parse_kv_payload(global.payload);
    // The original fields survive (clients parse models=)...
    EXPECT_EQ(kv.at("models"), "1");
    ASSERT_NE(kv.find("jobs"), kv.end());
    // ...plus the serving metrics block.
    for (const char* key :
         {"uptime_seconds", "connections", "connections_peak", "connections_accepted",
          "connections_refused", "requests_handled", "queue_depth",
          "queue_full_rejections", "streams_opened", "streams_active",
          "stream_suspensions", "rows_served", "rows_per_sec", "bytes_out",
          "model_cache_bytes", "model_cache_evictions"}) {
        EXPECT_NE(kv.find(key), kv.end()) << "missing STATS key " << key;
    }
    EXPECT_GE(std::stoull(kv.at("connections_accepted")), 1U);
    EXPECT_GE(std::stoull(kv.at("rows_served")), 20U);
    // Per-op latency lines appear once an op has traffic.
    EXPECT_NE(global.payload.find("op_SAMPLE count="), std::string::npos) << global.payload;
    EXPECT_NE(global.payload.find("p99_us="), std::string::npos);
    client.quit();
}

TEST(SynthServerLifecycle, StopUnblocksIdleConnections) {
    SynthServer server;
    server.start();
    auto client = SynthClient::connect("127.0.0.1", server.port());
    client.ping();
    // stop() must shut down the idle connection rather than hang on join.
    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(SynthServerLifecycle, RestartAfterStopServesAgain) {
    SynthServer server;
    server.start();
    {
        auto client = SynthClient::connect("127.0.0.1", server.port());
        client.ping();
    }
    server.stop();
    server.start();
    auto client = SynthClient::connect("127.0.0.1", server.port());
    client.ping();
    server.stop();
}

// ------------------------------------------------------- admission control

TEST(AdmissionControl, ConnectionCapRefusesExcessClientsWithQueueFull) {
    ServerOptions options;
    options.max_connections = 1;
    SynthServer server(options);
    server.start();

    auto first = SynthClient::connect("127.0.0.1", server.port());
    first.ping();  // occupies the single slot
    // The second connection is accepted at the TCP level (listen backlog)
    // but refused by admission control with a queue_full ERR before any
    // request is served.
    auto second = SynthClient::connect("127.0.0.1", server.port(),
                                       ClientOptions{.recv_timeout_ms = 5000});
    try {
        second.ping();
        FAIL() << "over-cap connection was served";
    } catch (const Error& e) {
        EXPECT_TRUE(is_queue_full_message(e.what())) << e.what();
    }
    // The admitted connection keeps working, and the refusal was counted.
    first.ping();
    EXPECT_GE(server.metrics().connections_refused.load(), 1U);
    first.quit();
    server.stop();
}

// --------------------------------------------------------- client timeouts

TEST(SynthClientTimeouts, RecvTimeoutFiresAgainstASilentServer) {
    // A listener that never answers: accepted by the kernel, served by
    // nobody.  Without a recv timeout rpc() would block forever.
    auto listener = TcpListener::bind_loopback(0);
    ClientOptions options;
    options.recv_timeout_ms = 150;
    auto client = SynthClient::connect("127.0.0.1", listener.port(), options);
    Request ping;
    ping.op = Op::ping;
    const auto before = std::chrono::steady_clock::now();
    try {
        (void)client.rpc(ping);
        FAIL() << "rpc against a silent server returned";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos) << e.what();
    }
    const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - before);
    EXPECT_LT(waited.count(), 5000) << "timeout took far longer than configured";
}

TEST(SynthClientTimeouts, ConnectTimeoutIsBounded) {
    // A listener whose accept queue is full drops further SYNs on the
    // floor (Linux default), so the connect can only end by timeout.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    ASSERT_EQ(::listen(fd, 1), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    const std::uint16_t port = ntohs(addr.sin_port);

    // Fill the never-drained accept queue; attempts start timing out once
    // it is full.
    std::vector<TcpStream> fillers;
    for (int i = 0; i < 4; ++i) {
        try {
            fillers.push_back(TcpStream::connect("127.0.0.1", port, 200));
        } catch (const Error&) {
            break;
        }
    }
    const auto before = std::chrono::steady_clock::now();
    try {
        (void)TcpStream::connect("127.0.0.1", port, 150);
        FAIL() << "connect against a full accept queue returned";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos) << e.what();
    }
    const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - before);
    EXPECT_LT(waited.count(), 5000);
    ::close(fd);
}

TEST(SynthClientTimeouts, ServerDeathMidStreamSurfacesAsAnError) {
    // Train a private server (the shared fixture must keep running) and
    // kill it while a stream is in flight: the client must get an error
    // promptly — never a hang — and the recv timeout is the backstop.
    ServerOptions options;
    auto* server = new SynthServer(options);
    server->start();
    const Response trained = server->handle(
        parse_request("TRAIN m records=400 sim-seed=11 epochs=2 gan-seed=1"));
    ASSERT_TRUE(trained.ok) << trained.error;

    ClientOptions copts;
    copts.recv_timeout_ms = 5000;
    auto client = SynthClient::connect("127.0.0.1", server->port(), copts);
    std::size_t chunks = 0;
    try {
        (void)client.sample_stream(
            "m", 500000, 3,
            [&](const std::string&) {
                if (++chunks == 2) {
                    // Stopping the server closes the connection under the
                    // client's feet mid-stream.
                    server->stop();
                }
            },
            /*chunk_rows=*/100);
        FAIL() << "stream against a killed server completed";
    } catch (const Error&) {
        EXPECT_GE(chunks, 2U);
    }
    delete server;
}

}  // namespace
