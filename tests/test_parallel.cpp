// Unit tests for the thread pool and the threaded matmul family: agreement
// with a naive serial reference on edge shapes, and determinism of the
// row-partitioned kernels with threading enabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/tensor/matrix.hpp"
#include "src/tensor/ops.hpp"

namespace {

using kinet::Rng;
using kinet::ThreadPool;
using kinet::tensor::Matrix;
namespace ops = kinet::tensor;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
    Matrix m(r, c);
    for (auto& v : m.data()) {
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    return m;
}

// Naive dot-product references; accumulation order differs from the blocked
// kernels, so comparisons allow float rounding slack scaled by depth.
Matrix naive_matmul(const Matrix& a, const Matrix& b) {
    Matrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < b.cols(); ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < a.cols(); ++p) {
                acc += static_cast<double>(a(i, p)) * static_cast<double>(b(p, j));
            }
            c(i, j) = static_cast<float>(acc);
        }
    }
    return c;
}

Matrix naive_matmul_tn(const Matrix& a, const Matrix& b) {
    Matrix c(a.cols(), b.cols());
    for (std::size_t i = 0; i < a.cols(); ++i) {
        for (std::size_t j = 0; j < b.cols(); ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < a.rows(); ++p) {
                acc += static_cast<double>(a(p, i)) * static_cast<double>(b(p, j));
            }
            c(i, j) = static_cast<float>(acc);
        }
    }
    return c;
}

Matrix naive_matmul_nt(const Matrix& a, const Matrix& b) {
    Matrix c(a.rows(), b.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < b.rows(); ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < a.cols(); ++p) {
                acc += static_cast<double>(a(i, p)) * static_cast<double>(b(j, p));
            }
            c(i, j) = static_cast<float>(acc);
        }
    }
    return c;
}

void expect_near(const Matrix& got, const Matrix& want, std::size_t depth) {
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    const float tol = 1e-5F * static_cast<float>(depth + 1);
    for (std::size_t r = 0; r < got.rows(); ++r) {
        for (std::size_t c = 0; c < got.cols(); ++c) {
            EXPECT_NEAR(got(r, c), want(r, c), tol) << "at (" << r << ", " << c << ")";
        }
    }
}

TEST(ThreadPool, SizeCountsSubmittingThread) {
    EXPECT_EQ(ThreadPool(1).size(), 1U);
    EXPECT_EQ(ThreadPool(4).size(), 4U);
    EXPECT_GE(kinet::hardware_threads(), 1U);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(hits.size(), pool.size(), [&](std::size_t b, std::size_t e) {
        ASSERT_LE(b, e);
        for (std::size_t i = b; i < e; ++i) {
            hits[i].fetch_add(1);
        }
    });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, EmptyRangeNeverInvokes) {
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallel_for(0, 4, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
    kinet::parallel_for(0, 1, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ChunkPartitionIsDeterministic) {
    ThreadPool pool(3);
    const auto collect = [&] {
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        std::mutex mu;
        pool.parallel_for(101, 3, [&](std::size_t b, std::size_t e) {
            const std::lock_guard<std::mutex> lock(mu);
            chunks.emplace_back(b, e);
        });
        std::sort(chunks.begin(), chunks.end());
        return chunks;
    };
    const auto first = collect();
    EXPECT_EQ(first.size(), 3U);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(collect(), first);
    }
}

TEST(ThreadPool, PropagatesExceptions) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(100, 4,
                                   [](std::size_t b, std::size_t) {
                                       if (b == 0) {
                                           throw kinet::Error("boom");
                                       }
                                   }),
                 kinet::Error);
    // The pool survives the failed batch.
    std::atomic<int> calls{0};
    pool.parallel_for(8, 4, [&](std::size_t b, std::size_t e) {
        calls.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPool, SubmitRunsTasksAsynchronously) {
    ThreadPool pool(4);
    constexpr int kTasks = 32;
    std::atomic<int> done{0};
    std::mutex mu;
    std::condition_variable cv;
    for (int t = 0; t < kTasks; ++t) {
        pool.submit([&] {
            if (done.fetch_add(1) + 1 == kTasks) {
                const std::lock_guard<std::mutex> lock(mu);
                cv.notify_all();
            }
        });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done.load() == kTasks; });
    EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, SubmitRunsInlineOnSingleLanePool) {
    ThreadPool pool(1);
    bool ran = false;
    pool.submit([&] { ran = true; });
    EXPECT_TRUE(ran);  // no workers: executed before submit returned
}

TEST(ThreadPool, SubmittedTasksMayHoldLocksAroundParallelFor) {
    // Regression test for the service deadlock: a submitted task that takes
    // a mutex and then runs parallel_for used to execute *other submitted
    // tasks* in its helper-drain loop — including one that blocks on the
    // very mutex the drainer holds.  With the chunk/task queues separated,
    // this pattern must complete for any pool size.
    ThreadPool pool(4);
    constexpr int kTasks = 12;
    std::mutex shared;
    std::atomic<int> done{0};
    std::mutex wait_mu;
    std::condition_variable cv;
    for (int t = 0; t < kTasks; ++t) {
        pool.submit([&] {
            const std::lock_guard<std::mutex> model_lock(shared);
            std::atomic<std::size_t> covered{0};
            pool.parallel_for(256, pool.size(), [&](std::size_t b, std::size_t e) {
                covered.fetch_add(e - b);
            });
            ASSERT_EQ(covered.load(), 256U);
            if (done.fetch_add(1) + 1 == kTasks) {
                const std::lock_guard<std::mutex> lock(wait_mu);
                cv.notify_all();
            }
        });
    }
    std::unique_lock<std::mutex> lock(wait_mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                            [&] { return done.load() == kTasks; }))
        << "pool wedged: " << done.load() << "/" << kTasks << " tasks finished";
}

TEST(ParallelMatmul, MatchesNaiveReferenceOnEdgeShapes) {
    Rng rng(7);
    // {m, k, n} covering: empty output, empty inner dim, single row/col,
    // k not a multiple of any block size, and a shape big enough to cross
    // the parallel dispatch threshold.
    const std::size_t shapes[][3] = {{0, 0, 0}, {0, 3, 4}, {3, 0, 4}, {3, 4, 0}, {1, 1, 1},
                                     {1, 7, 129}, {129, 7, 1}, {5, 13, 11}, {64, 31, 47},
                                     {97, 257, 65}};
    for (const auto& s : shapes) {
        const Matrix a = random_matrix(s[0], s[1], rng);
        const Matrix b = random_matrix(s[1], s[2], rng);
        expect_near(ops::matmul(a, b), naive_matmul(a, b), s[1]);

        const Matrix at = random_matrix(s[1], s[0], rng);  // a stored transposed
        expect_near(ops::matmul_tn(at, b), naive_matmul_tn(at, b), s[1]);

        const Matrix bt = random_matrix(s[2], s[1], rng);  // b stored transposed
        expect_near(ops::matmul_nt(a, bt), naive_matmul_nt(a, bt), s[1]);
    }
}

TEST(ParallelMatmul, ZeroEntriesNoLongerShortCircuit) {
    // The seed kernel skipped zero multipliers, making FLOP cost (and thus
    // timing) data-dependent; the blocked kernel must not.  Numerically a
    // zero row still contributes exactly zero.
    Matrix a(3, 4, 0.0F);
    a(1, 2) = 2.5F;
    Rng rng(11);
    const Matrix b = random_matrix(4, 5, rng);
    const Matrix c = ops::matmul(a, b);
    for (std::size_t j = 0; j < 5; ++j) {
        EXPECT_EQ(c(0, j), 0.0F);
        EXPECT_FLOAT_EQ(c(1, j), 2.5F * b(2, j));
        EXPECT_EQ(c(2, j), 0.0F);
    }
}

TEST(ParallelMatmul, BitIdenticalAcrossRepeatedRuns) {
    Rng rng(42);
    const Matrix a = random_matrix(130, 257, rng);
    const Matrix b = random_matrix(257, 70, rng);
    const Matrix at = ops::transpose(a);
    const Matrix bt = ops::transpose(b);
    const Matrix first = ops::matmul(a, b);
    const Matrix first_tn = ops::matmul_tn(at, b);
    const Matrix first_nt = ops::matmul_nt(a, bt);
    for (int run = 0; run < 5; ++run) {
        EXPECT_EQ(ops::matmul(a, b), first);
        EXPECT_EQ(ops::matmul_tn(at, b), first_tn);
        EXPECT_EQ(ops::matmul_nt(a, bt), first_nt);
    }
}

TEST(ParallelMatmul, RowPartitionDoesNotChangePerRowMath) {
    // Each output row's accumulation order is independent of the chunking,
    // so a row computed inside a large (parallel-dispatched) product must
    // be bit-identical to the same row computed alone (serial path).
    Rng rng(3);
    const Matrix a = random_matrix(96, 131, rng);
    const Matrix b = random_matrix(131, 64, rng);
    const Matrix big = ops::matmul(a, b);
    for (const std::size_t r : {std::size_t{0}, std::size_t{41}, std::size_t{95}}) {
        const std::size_t idx[] = {r};
        const Matrix lone = ops::matmul(a.gather_rows(idx), b);
        for (std::size_t j = 0; j < big.cols(); ++j) {
            EXPECT_EQ(big(r, j), lone(0, j)) << "row " << r << " col " << j;
        }
    }
}

TEST(ParallelMatmul, TransposedVariantsAgreeWithExplicitTranspose) {
    Rng rng(19);
    const Matrix a = random_matrix(33, 17, rng);
    const Matrix b = random_matrix(33, 21, rng);
    expect_near(ops::matmul_tn(a, b), naive_matmul(ops::transpose(a), b), a.rows());
    const Matrix d = random_matrix(21, 17, rng);
    const Matrix e = random_matrix(33, 17, rng);
    expect_near(ops::matmul_nt(e, d), naive_matmul(e, ops::transpose(d)), d.cols());
}

}  // namespace
