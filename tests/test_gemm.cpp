// Identity suite for the packed GEMM engine (src/tensor/gemm.hpp).
//
// The contract under test: (1) agreement with a naive reference on odd
// shapes that exercise every edge-tile path; (2) bit-identical results
// across repeated runs, row partitions, and thread counts (the 1-vs-4
// check re-executes this binary with KINET_NUM_THREADS pinned, since the
// pool size is latched at first use); (3) the fused epilogues
// (matmul_bias) and transposed variants are bit-identical to their
// composed counterparts; (4) gradients still check out through a fused
// Linear+activation stack.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>

#include "src/common/bytes.hpp"
#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/nn/grad_check.hpp"
#include "src/nn/nn.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/ops.hpp"

namespace {

using kinet::Rng;
using kinet::tensor::Matrix;
namespace ops = kinet::tensor;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
    Matrix m(r, c);
    for (auto& v : m.data()) {
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    return m;
}

/// Naive double-precision reference; the packed kernel may fuse multiply
/// and add (FMA), so comparisons allow rounding slack scaled by depth.
Matrix naive_matmul(const Matrix& a, const Matrix& b) {
    Matrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < b.cols(); ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < a.cols(); ++p) {
                acc += static_cast<double>(a(i, p)) * static_cast<double>(b(p, j));
            }
            c(i, j) = static_cast<float>(acc);
        }
    }
    return c;
}

void expect_near(const Matrix& got, const Matrix& want, std::size_t depth) {
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    const float tol = 1e-5F * static_cast<float>(depth + 1);
    for (std::size_t r = 0; r < got.rows(); ++r) {
        for (std::size_t c = 0; c < got.cols(); ++c) {
            ASSERT_NEAR(got(r, c), want(r, c), tol) << "at (" << r << ", " << c << ")";
        }
    }
}

TEST(Gemm, ReportsADispatchedKernel) {
    const std::string name = ops::gemm_kernel_name();
    EXPECT_TRUE(name == "avx2-fma-6x16" || name == "generic-4x8") << name;
}

TEST(Gemm, OddShapesMatchNaiveReference) {
    Rng rng(101);
    // Shapes straddling every blocking edge: below one register tile, one
    // element past MR/NR/KC multiples, exact multiples, and long-k strips.
    const std::size_t shapes[][3] = {
        {1, 1, 1},   {2, 3, 5},    {4, 8, 8},    {5, 9, 17},    {6, 16, 16},  {7, 17, 15},
        {12, 32, 8}, {13, 257, 31}, {24, 300, 48}, {65, 129, 33}, {96, 256, 16}, {97, 511, 130}};
    for (const auto& s : shapes) {
        const Matrix a = random_matrix(s[0], s[1], rng);
        const Matrix b = random_matrix(s[1], s[2], rng);
        expect_near(ops::matmul(a, b), naive_matmul(a, b), s[1]);
    }
}

TEST(Gemm, TransposedVariantsAreBitIdenticalToMaterializedTranspose) {
    // Same engine, same packing order, same per-element accumulation —
    // reading Aᵀ/Bᵀ through strides must not change a single bit relative
    // to materialising the transpose first.
    Rng rng(102);
    const std::size_t shapes[][3] = {{5, 7, 3}, {6, 16, 16}, {64, 31, 47}, {97, 257, 65}};
    for (const auto& s : shapes) {
        const Matrix a = random_matrix(s[0], s[1], rng);
        const Matrix b = random_matrix(s[1], s[2], rng);
        const Matrix at = ops::transpose(a);
        const Matrix bt = ops::transpose(b);
        EXPECT_EQ(ops::matmul_tn(at, b), ops::matmul(a, b));
        EXPECT_EQ(ops::matmul_nt(a, bt), ops::matmul(a, b));
    }
}

TEST(Gemm, FusedBiasIsBitIdenticalToBroadcastAdd) {
    Rng rng(103);
    for (const auto& s : {std::array<std::size_t, 3>{3, 5, 7},
                          std::array<std::size_t, 3>{128, 96, 128},
                          std::array<std::size_t, 3>{65, 257, 33}}) {
        const Matrix a = random_matrix(s[0], s[1], rng);
        const Matrix b = random_matrix(s[1], s[2], rng);
        const Matrix bias = random_matrix(1, s[2], rng);
        EXPECT_EQ(ops::matmul_bias(a, b, bias),
                  ops::add_row_broadcast(ops::matmul(a, b), bias));
    }
}

TEST(Gemm, RowPartitionDoesNotChangePerRowMath) {
    // A row computed inside a large product must be bit-identical to the
    // same row computed alone — the engine packs it into a different
    // strip slot, but its accumulation chain is unchanged.
    Rng rng(104);
    const Matrix a = random_matrix(131, 300, rng);
    const Matrix b = random_matrix(300, 70, rng);
    const Matrix big = ops::matmul(a, b);
    for (const std::size_t r : {std::size_t{0}, std::size_t{64}, std::size_t{130}}) {
        const std::size_t idx[] = {r};
        const Matrix lone = ops::matmul(a.gather_rows(idx), b);
        for (std::size_t j = 0; j < big.cols(); ++j) {
            ASSERT_EQ(big(r, j), lone(0, j)) << "row " << r << " col " << j;
        }
    }
}

TEST(Gemm, RepeatedRunsAreBitIdentical) {
    Rng rng(105);
    const Matrix a = random_matrix(130, 257, rng);
    const Matrix b = random_matrix(257, 70, rng);
    const Matrix bias = random_matrix(1, 70, rng);
    const Matrix first = ops::matmul_bias(a, b, bias);
    for (int run = 0; run < 5; ++run) {
        EXPECT_EQ(ops::matmul_bias(a, b, bias), first);
    }
}

TEST(Gemm, BlockedTransposeMatchesElementwise) {
    Rng rng(106);
    for (const auto& s : {std::pair<std::size_t, std::size_t>{1, 1},
                          std::pair<std::size_t, std::size_t>{63, 65},
                          std::pair<std::size_t, std::size_t>{64, 64},
                          std::pair<std::size_t, std::size_t>{130, 257}}) {
        const Matrix a = random_matrix(s.first, s.second, rng);
        const Matrix t = ops::transpose(a);
        ASSERT_EQ(t.rows(), a.cols());
        ASSERT_EQ(t.cols(), a.rows());
        for (std::size_t r = 0; r < a.rows(); ++r) {
            for (std::size_t c = 0; c < a.cols(); ++c) {
                ASSERT_EQ(t(c, r), a(r, c));
            }
        }
        EXPECT_EQ(ops::transpose(t), a);  // involution, bitwise
    }
}

TEST(Gemm, FusedColMeanVarIsBitIdenticalToUnfusedPair) {
    Rng rng(107);
    const Matrix a = random_matrix(113, 37, rng);
    Matrix mean;
    Matrix var;
    ops::col_mean_var(a, mean, var);
    EXPECT_EQ(mean, ops::col_mean(a));
    EXPECT_EQ(var, ops::col_var(a));
}

TEST(Gemm, ElementwiseOpsCheckShapeBeforeCopying) {
    const Matrix a(2, 3, 1.0F);
    const Matrix b(3, 2, 1.0F);
    EXPECT_THROW((void)ops::add(a, b), kinet::Error);
    EXPECT_THROW((void)ops::sub(a, b), kinet::Error);
    EXPECT_THROW((void)ops::mul(a, b), kinet::Error);
    Matrix c = a;
    EXPECT_THROW(ops::mul_inplace(c, b), kinet::Error);
    EXPECT_EQ(c, a);  // untouched on failure
}

TEST(Gemm, InplaceVariantsMatchAllocatingOnes) {
    Rng rng(108);
    const Matrix a = random_matrix(9, 11, rng);
    const Matrix b = random_matrix(9, 11, rng);
    Matrix x = a;
    ops::mul_inplace(x, b);
    EXPECT_EQ(x, ops::mul(a, b));
    Matrix y = a;
    ops::map_inplace(y, [](float v) { return v * 0.5F + 1.0F; });
    EXPECT_EQ(y, ops::map(a, [](float v) { return v * 0.5F + 1.0F; }));
    Matrix z = a;
    const Matrix row = random_matrix(1, 11, rng);
    ops::add_row_broadcast_inplace(z, row);
    EXPECT_EQ(z, ops::add_row_broadcast(a, row));
}

TEST(Gemm, GradCheckThroughFusedLinearActivationStack) {
    // The fused-bias Linear must still produce correct gradients as a
    // composed network.  Smooth activations only: ReLU/LeakyReLU kinks
    // make finite differences unreliable in composition (their backward
    // masks are covered by the single-layer checks in test_nn_layers);
    // this stack exercises the fused GEMM epilogue through three layers.
    Rng rng(109);
    kinet::nn::Sequential net;
    net.emplace<kinet::nn::Linear>(7, 12, rng, "gc.fc0");
    net.emplace<kinet::nn::Tanh>();
    net.emplace<kinet::nn::Linear>(12, 9, rng, "gc.fc1");
    net.emplace<kinet::nn::Sigmoid>();
    net.emplace<kinet::nn::Linear>(9, 5, rng, "gc.out");
    const Matrix x = random_matrix(11, 7, rng);
    // Larger step than the default: through saturating layers the default
    // 1e-3 probe sits within float32 rounding noise.
    const auto result = kinet::nn::check_gradients(net, x, rng, true, 5e-3F);
    EXPECT_LT(result.max_input_error, 5e-2);
    EXPECT_LT(result.max_param_error, 5e-2);
}

/// Runs the fixed workload whose byte-level hash the thread-identity test
/// compares across KINET_NUM_THREADS settings.
std::uint64_t workload_hash() {
    Rng rng(4242);
    kinet::bytes::Writer w;
    const std::size_t shapes[][3] = {{97, 257, 65}, {6, 16, 16}, {130, 300, 70}, {13, 31, 7}};
    for (const auto& s : shapes) {
        const Matrix a = random_matrix(s[0], s[1], rng);
        const Matrix b = random_matrix(s[1], s[2], rng);
        const Matrix bias = random_matrix(1, s[2], rng);
        const Matrix c = ops::matmul_bias(a, b, bias);
        const Matrix tn = ops::matmul_tn(ops::transpose(a), b);
        const Matrix nt = ops::matmul_nt(a, ops::transpose(b));
        for (const Matrix* m : {&c, &tn, &nt}) {
            w.f32_array(m->data());
        }
    }
    return kinet::bytes::fnv1a(w.buffer());
}

TEST(Gemm, BitIdenticalAcrossThreadCounts) {
    // The pool size is latched at first use, so each thread count gets a
    // fresh process: re-exec this binary with KINET_NUM_THREADS pinned and
    // compare the workload hashes.
    char exe[4096];
    const ssize_t len = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (len <= 0) {
        GTEST_SKIP() << "cannot resolve own binary path";
    }
    exe[len] = '\0';
    std::string hashes[2];
    const char* counts[2] = {"1", "4"};
    for (int i = 0; i < 2; ++i) {
        const std::string cmd = std::string("KINET_NUM_THREADS=") + counts[i] + " '" + exe +
                                "' --gemm-workload-hash 2>/dev/null";
        FILE* pipe = popen(cmd.c_str(), "r");
        ASSERT_NE(pipe, nullptr);
        char line[64] = {};
        const bool got = std::fgets(line, sizeof(line), pipe) != nullptr;
        const int rc = pclose(pipe);
        ASSERT_TRUE(got) << "no hash from child with KINET_NUM_THREADS=" << counts[i];
        ASSERT_EQ(rc, 0) << "child failed with KINET_NUM_THREADS=" << counts[i];
        hashes[i] = line;
    }
    EXPECT_FALSE(hashes[0].empty());
    EXPECT_EQ(hashes[0], hashes[1]) << "results differ between 1 and 4 threads";
}

}  // namespace

// Custom main: `--gemm-workload-hash` turns the binary into the child side
// of the thread-identity test (prints the workload hash and exits).
int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--gemm-workload-hash") {
            std::printf("%016llx\n", static_cast<unsigned long long>(workload_hash()));
            return 0;
        }
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
