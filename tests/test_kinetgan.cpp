// Behavioural tests for the KiNETGAN core model (small configs for speed).
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/core/kinetgan.hpp"
#include "src/netsim/lab_simulator.hpp"

namespace {

using kinet::core::KiNetGan;
using kinet::core::KiNetGanOptions;
using kinet::data::Table;

KiNetGanOptions tiny_options(std::uint64_t seed = 42) {
    KiNetGanOptions opts;
    opts.gan.epochs = 10;
    opts.gan.batch_size = 64;
    opts.gan.hidden_dim = 48;
    opts.gan.noise_dim = 24;
    opts.gan.seed = seed;
    opts.transformer.max_modes = 3;
    return opts;
}

Table small_lab(std::size_t rows = 800) {
    kinet::netsim::LabSimOptions opts;
    opts.records = rows;
    opts.seed = 3;
    return kinet::netsim::LabTrafficSimulator(opts).generate();
}

TEST(KiNetGan, FitAndSampleProduceSchemaCompatibleRows) {
    const Table real = small_lab();
    const auto kg = kinet::kg::NetworkKg::build_lab();
    KiNetGan model(kg.make_oracle(), kinet::netsim::lab_conditional_columns(), tiny_options());
    model.fit(real);
    const Table synth = model.sample(300);
    EXPECT_EQ(synth.rows(), 300U);
    EXPECT_EQ(synth.cols(), real.cols());
    for (std::size_t c = 0; c < real.cols(); ++c) {
        EXPECT_EQ(synth.meta(c).name, real.meta(c).name);
        if (synth.meta(c).is_categorical()) {
            for (std::size_t r = 0; r < synth.rows(); ++r) {
                EXPECT_LT(synth.category_at(r, c), synth.meta(c).categories.size());
            }
        }
    }
}

TEST(KiNetGan, ReportTracksTraining) {
    const Table real = small_lab(500);
    const auto kg = kinet::kg::NetworkKg::build_lab();
    auto opts = tiny_options();
    opts.gan.epochs = 5;
    KiNetGan model(kg.make_oracle(), kinet::netsim::lab_conditional_columns(), opts);
    model.fit(real);
    EXPECT_EQ(model.report().generator_loss.size(), 5U);
    EXPECT_EQ(model.report().discriminator_loss.size(), 5U);
    EXPECT_GT(model.report().seconds, 0.0);
    EXPECT_GT(model.last_cond_adherence(), 0.0);
}

TEST(KiNetGan, KgValidityRateIsPerfectOnSimulatedData) {
    const Table real = small_lab(600);
    const auto kg = kinet::kg::NetworkKg::build_lab();
    KiNetGan model(kg.make_oracle(), kinet::netsim::lab_conditional_columns(), tiny_options());
    EXPECT_DOUBLE_EQ(model.kg_validity_rate(real), 1.0);
}

TEST(KiNetGan, KgDiscriminatorImprovesSyntheticValidity) {
    const Table real = small_lab(1200);
    const auto kg = kinet::kg::NetworkKg::build_lab();

    auto with_kg_opts = tiny_options(7);
    with_kg_opts.gan.epochs = 25;
    KiNetGan with_kg(kg.make_oracle(), kinet::netsim::lab_conditional_columns(), with_kg_opts);
    with_kg.fit(real);

    auto without_kg_opts = with_kg_opts;
    without_kg_opts.use_kg_discriminator = false;
    KiNetGan without_kg(kg.make_oracle(), kinet::netsim::lab_conditional_columns(),
                        without_kg_opts);
    without_kg.fit(real);

    const double v_with = with_kg.kg_validity_rate(with_kg.sample(400));
    const double v_without = without_kg.kg_validity_rate(without_kg.sample(400));
    // The knowledge-guided discriminator must not hurt validity, and the
    // trained model should emit mostly valid combinations.
    EXPECT_GE(v_with + 0.05, v_without);
    EXPECT_GT(v_with, 0.5);
}

TEST(KiNetGan, SampleBeforeFitThrows) {
    const auto kg = kinet::kg::NetworkKg::build_lab();
    KiNetGan model(kg.make_oracle(), kinet::netsim::lab_conditional_columns(), tiny_options());
    EXPECT_THROW((void)model.sample(10), kinet::Error);
}

TEST(KiNetGan, DiscriminatorScoresAreProbabilities) {
    const Table real = small_lab(400);
    const auto kg = kinet::kg::NetworkKg::build_lab();
    auto opts = tiny_options();
    opts.gan.epochs = 4;
    KiNetGan model(kg.make_oracle(), kinet::netsim::lab_conditional_columns(), opts);
    model.fit(real);
    const auto scores = model.discriminator_scores(real);
    EXPECT_EQ(scores.size(), real.rows());
    for (double s : scores) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
    }
}

TEST(KiNetGan, AblationSwitchesAreHonoured) {
    const Table real = small_lab(400);
    const auto kg = kinet::kg::NetworkKg::build_lab();
    auto opts = tiny_options();
    opts.gan.epochs = 3;
    opts.use_kg_discriminator = false;
    opts.use_cond_penalty = false;
    opts.use_minority_resampling = false;
    KiNetGan model(kg.make_oracle(), kinet::netsim::lab_conditional_columns(), opts);
    model.fit(real);  // must train cleanly with everything disabled
    EXPECT_EQ(model.sample(50).rows(), 50U);
}

TEST(KiNetGan, SyntheticLabelDistributionCoversMinorityClasses) {
    const Table real = small_lab(1500);
    const auto kg = kinet::kg::NetworkKg::build_lab();
    auto opts = tiny_options(11);
    opts.gan.epochs = 20;
    KiNetGan model(kg.make_oracle(), kinet::netsim::lab_conditional_columns(), opts);
    model.fit(real);
    const Table synth = model.sample(600);

    // Conditional sampling should reproduce several event types, not collapse.
    const auto counts = synth.category_counts(synth.column_index("event_type"));
    std::size_t present = 0;
    for (std::size_t c : counts) {
        present += (c > 0) ? 1 : 0;
    }
    EXPECT_GE(present, 5U);
}

TEST(KiNetGan, RequiresCategoricalOracleColumns) {
    const auto kg = kinet::kg::NetworkKg::build_lab();
    EXPECT_THROW(KiNetGan(kg.make_oracle(), {}, tiny_options()), kinet::Error);
}

}  // namespace
