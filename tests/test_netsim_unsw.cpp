// Tests for the UNSW-NB15-style synthesizer.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/kg/network_kg.hpp"
#include "src/netsim/unsw_synthesizer.hpp"

namespace {

using namespace kinet::netsim;  // NOLINT

TEST(UnswSynthesizer, SchemaAndRecordCount) {
    UnswOptions opts;
    opts.records = 1500;
    const auto table = UnswNb15Synthesizer(opts).generate();
    EXPECT_EQ(table.rows(), 1500U);
    EXPECT_EQ(table.cols(), unsw_schema().size());
    EXPECT_EQ(table.meta(unsw_label_column()).name, "label");
    EXPECT_EQ(table.meta(15).name, "attack_cat");
}

TEST(UnswSynthesizer, LabelConsistentWithAttackCategory) {
    UnswOptions opts;
    opts.records = 3000;
    const auto table = UnswNb15Synthesizer(opts).generate();
    const std::size_t cat_col = table.column_index("attack_cat");
    const std::size_t label_col = unsw_label_column();
    for (std::size_t r = 0; r < table.rows(); ++r) {
        const bool is_normal = (table.label_at(r, cat_col) == "Normal");
        const bool labelled_normal = (table.label_at(r, label_col) == "normal");
        EXPECT_EQ(is_normal, labelled_normal);
    }
}

TEST(UnswSynthesizer, NormalDominatesAndAttacksImbalanced) {
    UnswOptions opts;
    opts.records = 20000;
    const auto table = UnswNb15Synthesizer(opts).generate();
    const auto counts = table.category_counts(table.column_index("attack_cat"));
    const auto& cats = kinet::kg::unsw_attack_categories();

    const auto normal_idx = static_cast<std::size_t>(
        std::find(cats.begin(), cats.end(), "Normal") - cats.begin());
    const double normal_rate = static_cast<double>(counts[normal_idx]) / table.rows();
    EXPECT_GT(normal_rate, 0.75);
    EXPECT_LT(normal_rate, 0.95);

    // Generic should be the largest attack class; Worms the smallest.
    const auto idx_of = [&cats](const std::string& name) {
        return static_cast<std::size_t>(std::find(cats.begin(), cats.end(), name) - cats.begin());
    };
    EXPECT_GT(counts[idx_of("Generic")], counts[idx_of("Worms")]);
    EXPECT_GT(counts[idx_of("Exploits")], counts[idx_of("Shellcode")]);
}

TEST(UnswSynthesizer, FlowsRespectKgProtocolRules) {
    UnswOptions opts;
    opts.records = 4000;
    const auto table = UnswNb15Synthesizer(opts).generate();
    const auto kg = kinet::kg::NetworkKg::build_unsw();
    const auto oracle = kg.make_oracle();

    std::vector<std::size_t> cols;
    for (const auto& attr : oracle.attribute_names()) {
        cols.push_back(table.column_index(attr));
    }
    for (std::size_t r = 0; r < table.rows(); ++r) {
        std::vector<std::string> tuple;
        for (std::size_t c : cols) {
            tuple.push_back(table.label_at(r, c));
        }
        ASSERT_TRUE(oracle.is_valid(tuple)) << "row " << r;
    }
}

TEST(UnswSynthesizer, TcpRttZeroForNonTcp) {
    UnswOptions opts;
    opts.records = 3000;
    const auto table = UnswNb15Synthesizer(opts).generate();
    const std::size_t proto_col = table.column_index("proto");
    const std::size_t rtt_col = table.column_index("tcprtt");
    for (std::size_t r = 0; r < table.rows(); ++r) {
        if (table.label_at(r, proto_col) != "tcp") {
            EXPECT_EQ(table.value(r, rtt_col), 0.0F);
        }
    }
}

TEST(UnswSynthesizer, LoadsConsistentWithBytesAndDuration) {
    UnswOptions opts;
    opts.records = 500;
    const auto table = UnswNb15Synthesizer(opts).generate();
    const std::size_t dur = table.column_index("dur");
    const std::size_t sbytes = table.column_index("sbytes");
    const std::size_t sload = table.column_index("sload");
    for (std::size_t r = 0; r < table.rows(); ++r) {
        const double expected =
            8.0 * table.value(r, sbytes) / std::max<double>(table.value(r, dur), 1e-3);
        EXPECT_NEAR(table.value(r, sload), expected, std::abs(expected) * 0.01 + 1.0);
    }
}

TEST(UnswSynthesizer, DeterministicPerSeed) {
    UnswOptions opts;
    opts.records = 200;
    opts.seed = 5;
    const auto a = UnswNb15Synthesizer(opts).generate();
    const auto b = UnswNb15Synthesizer(opts).generate();
    for (std::size_t r = 0; r < a.rows(); ++r) {
        EXPECT_EQ(a.value(r, 6), b.value(r, 6));
    }
}

TEST(UnswSynthesizer, DosFlowsCarryHigherSourceVolume) {
    UnswOptions opts;
    opts.records = 20000;
    const auto table = UnswNb15Synthesizer(opts).generate();
    const std::size_t cat_col = table.column_index("attack_cat");
    const std::size_t sbytes_col = table.column_index("sbytes");
    double dos_sum = 0.0;
    std::size_t dos_n = 0;
    double recon_sum = 0.0;
    std::size_t recon_n = 0;
    for (std::size_t r = 0; r < table.rows(); ++r) {
        const auto& cat = table.label_at(r, cat_col);
        if (cat == "DoS") {
            dos_sum += table.value(r, sbytes_col);
            ++dos_n;
        } else if (cat == "Reconnaissance") {
            recon_sum += table.value(r, sbytes_col);
            ++recon_n;
        }
    }
    ASSERT_GT(dos_n, 0U);
    ASSERT_GT(recon_n, 0U);
    EXPECT_GT(dos_sum / dos_n, 5.0 * (recon_sum / recon_n));
}

}  // namespace
