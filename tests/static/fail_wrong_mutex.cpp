// Negative-compile case: holding the WRONG mutex does not satisfy a
// GUARDED_BY edge — the analysis tracks which capability guards which field,
// not merely "some lock is held".
#include "src/common/thread_annotations.hpp"

class Pair {
public:
    // BAD: value_ is guarded by mu_, but this holds other_mu_.
    void set(int v) {
        const kinet::MutexLock lock(other_mu_);
        value_ = v;
    }

private:
    kinet::Mutex mu_;
    kinet::Mutex other_mu_;
    int value_ KINET_GUARDED_BY(mu_) = 0;
};

int main() {
    Pair p;
    p.set(7);
    return 0;
}
