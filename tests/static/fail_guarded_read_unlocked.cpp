// Negative-compile case: reading a KINET_GUARDED_BY field without the lock
// must be rejected by clang -Wthread-safety (-Werror=thread-safety).  The
// ctest wrapper registers this translation unit with WILL_FAIL, so a clean
// compile is the test failure.
#include "src/common/thread_annotations.hpp"

class Counter {
public:
    void add(int v) {
        const kinet::MutexLock lock(mu_);
        value_ += v;
    }

    // BAD: reads value_ without holding mu_.
    [[nodiscard]] int get_unlocked() const { return value_; }

private:
    mutable kinet::Mutex mu_;
    int value_ KINET_GUARDED_BY(mu_) = 0;
};

int main() {
    Counter c;
    c.add(1);
    return c.get_unlocked();
}
