// Negative-compile case: calling a KINET_REQUIRES(mu_) helper without
// holding mu_ must be rejected (this is exactly the *_locked convention the
// tree uses — e.g. ModelRegistry::evict_over_budget_locked).
#include "src/common/thread_annotations.hpp"

class Table {
public:
    // BAD: invokes the _locked helper with no lock held.
    void prune() { prune_locked(); }

private:
    void prune_locked() KINET_REQUIRES(mu_) { size_ = 0; }

    kinet::Mutex mu_;
    int size_ KINET_GUARDED_BY(mu_) = 0;
};

int main() {
    Table t;
    t.prune();
    return 0;
}
