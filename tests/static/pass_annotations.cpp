// Positive control for the negative-compile harness: every locking pattern
// the tree relies on, written correctly, must compile CLEAN under
// -Wthread-safety -Werror=thread-safety.  If this case fails, the harness
// (or the wrapper types in thread_annotations.hpp) is broken — the
// fail_*.cpp results are meaningless noise until it passes again.
#include "src/common/thread_annotations.hpp"

// Exclusive mutex + GUARDED_BY + the *_locked REQUIRES convention.
class Counter {
public:
    void add(int v) {
        const kinet::MutexLock lock(mu_);
        value_ += v;
    }

    [[nodiscard]] int get() const {
        const kinet::MutexLock lock(mu_);
        return value_;
    }

    void reset() {
        const kinet::MutexLock lock(mu_);
        reset_locked();
    }

private:
    void reset_locked() KINET_REQUIRES(mu_) { value_ = 0; }

    mutable kinet::Mutex mu_;
    int value_ KINET_GUARDED_BY(mu_) = 0;
};

// Reader/writer discipline over a SharedMutex (the ModelRegistry shape).
class Registry {
public:
    [[nodiscard]] int lookup() const {
        const kinet::ReaderLock lock(mu_);
        return entries_;
    }

    void insert() {
        const kinet::WriterLock lock(mu_);
        ++entries_;
    }

private:
    mutable kinet::SharedMutex mu_;
    int entries_ KINET_GUARDED_BY(mu_) = 0;
};

// CondVar + UniqueLock with the inline predicate loop (the JobManager /
// ThreadPool worker shape) — the guarded read happens where the analysis
// can see the capability held.
class Queue {
public:
    void push() {
        {
            const kinet::MutexLock lock(mu_);
            ++pending_;
        }
        cv_.notify_one();
    }

    void pop() {
        kinet::UniqueLock lock(mu_);
        while (pending_ == 0) {
            cv_.wait(lock);
        }
        --pending_;
    }

private:
    kinet::Mutex mu_;
    kinet::CondVar cv_;
    int pending_ KINET_GUARDED_BY(mu_) = 0;
};

int main() {
    Counter c;
    c.add(2);
    c.reset();

    Registry r;
    r.insert();

    Queue q;
    q.push();
    q.pop();
    return c.get() + r.lookup();
}
