// Negative-compile case: a ReaderLock (shared hold) does not license a
// WRITE to a field guarded by the SharedMutex — writers need WriterLock.
// This is the ModelRegistry discipline: lookups take ReaderLock, anything
// that mutates the LRU map takes WriterLock.
#include "src/common/thread_annotations.hpp"

class Registry {
public:
    // BAD: shared hold, exclusive write.
    void bump_under_reader() {
        const kinet::ReaderLock lock(mu_);
        ++entries_;
    }

private:
    mutable kinet::SharedMutex mu_;
    int entries_ KINET_GUARDED_BY(mu_) = 0;
};

int main() {
    Registry r;
    r.bump_under_reader();
    return 0;
}
