// Unit tests for the common utilities: Rng, check, text, csv, stopwatch.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/csv.hpp"
#include "src/common/rng.hpp"
#include "src/common/stopwatch.hpp"
#include "src/common/text.hpp"

namespace {

using kinet::Error;
using kinet::Rng;

TEST(Check, ThrowsWithMessageAndLocation) {
    try {
        KINET_CHECK(1 == 2, "custom context");
        FAIL() << "expected throw";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
        EXPECT_NE(what.find("custom context"), std::string::npos);
        EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
    }
}

TEST(Rng, DeterministicAcrossInstances) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    }
}

TEST(Rng, UniformBounds) {
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 3.0);
        EXPECT_GE(u, -2.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Rng, RandintInclusiveBounds) {
    Rng rng(2);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.randint(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= (v == 0);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
    Rng rng(3);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(2.0, 3.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.1);
    EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(Rng, LaplaceIsSymmetricWithCorrectScale) {
    Rng rng(4);
    double sum = 0.0;
    double abs_sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.laplace(0.0, 2.0);
        sum += v;
        abs_sum += std::abs(v);
    }
    EXPECT_NEAR(sum / n, 0.0, 0.15);
    EXPECT_NEAR(abs_sum / n, 2.0, 0.15);  // E|X| = b for Laplace(0, b)
}

TEST(Rng, CategoricalRespectsWeights) {
    Rng rng(5);
    const std::vector<double> w = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 8000; ++i) {
        ++counts[rng.categorical(w)];
    }
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, CategoricalRejectsAllZeroWeights) {
    Rng rng(6);
    const std::vector<double> w = {0.0, 0.0};
    EXPECT_THROW((void)rng.categorical(w), Error);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
    Rng rng(7);
    const auto idx = rng.sample_without_replacement(50, 20);
    EXPECT_EQ(idx.size(), 20U);
    std::vector<bool> seen(50, false);
    for (auto i : idx) {
        EXPECT_LT(i, 50U);
        EXPECT_FALSE(seen[i]);
        seen[i] = true;
    }
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
    Rng rng(8);
    EXPECT_THROW((void)rng.sample_without_replacement(5, 6), Error);
}

TEST(Rng, PermutationCoversAllIndices) {
    Rng rng(9);
    auto perm = rng.permutation(64);
    std::sort(perm.begin(), perm.end());
    for (std::size_t i = 0; i < perm.size(); ++i) {
        EXPECT_EQ(perm[i], i);
    }
}

TEST(Rng, ForkProducesIndependentStream) {
    Rng parent(10);
    Rng child = parent.fork();
    // The child's values differ from the parent's next draws.
    EXPECT_NE(parent.uniform(), child.uniform());
}

TEST(Text, SplitKeepsEmptyFields) {
    const auto parts = kinet::text::split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4U);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Text, TrimRemovesSurroundingWhitespace) {
    EXPECT_EQ(kinet::text::trim("  x y \t\n"), "x y");
    EXPECT_EQ(kinet::text::trim(""), "");
    EXPECT_EQ(kinet::text::trim("   "), "");
}

TEST(Text, JoinAndPad) {
    EXPECT_EQ(kinet::text::join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(kinet::text::pad("ab", 5), "ab   ");
    EXPECT_EQ(kinet::text::pad("abcdef", 3), "abc");
}

TEST(Text, FormatDoubleFixedPrecision) {
    EXPECT_EQ(kinet::text::format_double(0.126, 2), "0.13");
    EXPECT_EQ(kinet::text::format_double(3.0, 3), "3.000");
}

TEST(Csv, RoundTripWithQuoting) {
    kinet::csv::Document doc;
    doc.header = {"name", "note"};
    doc.rows.push_back({"alice", "plain"});
    doc.rows.push_back({"bob", "has,comma"});
    doc.rows.push_back({"carol", "has\"quote"});
    const auto text = kinet::csv::serialize(doc);
    const auto parsed = kinet::csv::parse(text);
    EXPECT_EQ(parsed.header, doc.header);
    ASSERT_EQ(parsed.rows.size(), doc.rows.size());
    for (std::size_t i = 0; i < doc.rows.size(); ++i) {
        EXPECT_EQ(parsed.rows[i], doc.rows[i]);
    }
}

TEST(Csv, RejectsRaggedRows) {
    EXPECT_THROW((void)kinet::csv::parse("a,b\n1,2,3\n"), Error);
}

TEST(Csv, RejectsUnterminatedQuote) {
    EXPECT_THROW((void)kinet::csv::parse("a\n\"unclosed\n"), Error);
}

TEST(Csv, HandlesCrLfLineEndings) {
    const auto doc = kinet::csv::parse("a,b\r\n1,2\r\n");
    ASSERT_EQ(doc.rows.size(), 1U);
    EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(Stopwatch, MeasuresElapsedTime) {
    kinet::Stopwatch watch;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) {
        sink = sink + 1.0;
    }
    const double first = watch.seconds();
    EXPECT_GE(first, 0.0);
    EXPECT_GE(watch.seconds(), first);  // monotone
    watch.reset();
    EXPECT_LT(watch.seconds(), 1.0);
}

}  // namespace
