// Unit tests for the Matrix type and linear-algebra kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/tensor/matrix.hpp"
#include "src/tensor/ops.hpp"

namespace {

using kinet::Error;
using kinet::Rng;
using kinet::tensor::Matrix;
namespace ops = kinet::tensor;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
    Matrix m(r, c);
    for (auto& v : m.data()) {
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    return m;
}

TEST(Matrix, ConstructionAndAccess) {
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2U);
    EXPECT_EQ(m.cols(), 3U);
    EXPECT_EQ(m.size(), 6U);
    m.at(1, 2) = 5.0F;
    EXPECT_FLOAT_EQ(m(1, 2), 5.0F);
    EXPECT_THROW((void)m.at(2, 0), Error);
    EXPECT_THROW((void)m.at(0, 3), Error);
}

TEST(Matrix, InitializerListRejectsRagged) {
    EXPECT_THROW((Matrix{{1.0F, 2.0F}, {3.0F}}), Error);
    const Matrix m{{1.0F, 2.0F}, {3.0F, 4.0F}};
    EXPECT_FLOAT_EQ(m(1, 0), 3.0F);
}

TEST(Matrix, ElementwiseInPlaceOps) {
    Matrix a{{1.0F, 2.0F}};
    const Matrix b{{3.0F, 4.0F}};
    a += b;
    EXPECT_FLOAT_EQ(a(0, 1), 6.0F);
    a -= b;
    EXPECT_FLOAT_EQ(a(0, 1), 2.0F);
    a *= 2.0F;
    EXPECT_FLOAT_EQ(a(0, 0), 2.0F);
    Matrix wrong(2, 2);
    EXPECT_THROW(a += wrong, Error);
}

TEST(Matrix, AppendRowsAndGather) {
    Matrix a{{1.0F, 2.0F}};
    const Matrix b{{3.0F, 4.0F}, {5.0F, 6.0F}};
    a.append_rows(b);
    EXPECT_EQ(a.rows(), 3U);
    const std::vector<std::size_t> idx = {2, 0};
    const Matrix g = a.gather_rows(idx);
    EXPECT_FLOAT_EQ(g(0, 0), 5.0F);
    EXPECT_FLOAT_EQ(g(1, 1), 2.0F);
    const std::vector<std::size_t> bad = {7};
    EXPECT_THROW((void)a.gather_rows(bad), Error);
}

TEST(Matrix, SliceColsAndHcat) {
    const Matrix m{{1.0F, 2.0F, 3.0F}, {4.0F, 5.0F, 6.0F}};
    const Matrix s = m.slice_cols(1, 3);
    EXPECT_EQ(s.cols(), 2U);
    EXPECT_FLOAT_EQ(s(1, 0), 5.0F);
    const Matrix joined = Matrix::hcat(m.slice_cols(0, 1), s);
    EXPECT_EQ(joined, m);
    EXPECT_THROW((void)m.slice_cols(2, 1), Error);
}

TEST(Ops, MatmulAgainstHandComputed) {
    const Matrix a{{1.0F, 2.0F}, {3.0F, 4.0F}};
    const Matrix b{{5.0F, 6.0F}, {7.0F, 8.0F}};
    const Matrix c = ops::matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 19.0F);
    EXPECT_FLOAT_EQ(c(0, 1), 22.0F);
    EXPECT_FLOAT_EQ(c(1, 0), 43.0F);
    EXPECT_FLOAT_EQ(c(1, 1), 50.0F);
    EXPECT_THROW((void)ops::matmul(a, Matrix(3, 2)), Error);
}

TEST(Ops, TransposedMatmulVariantsMatchExplicitTranspose) {
    Rng rng(11);
    const Matrix a = random_matrix(7, 4, rng);
    const Matrix b = random_matrix(7, 5, rng);
    const Matrix tn = ops::matmul_tn(a, b);                       // a^T b
    const Matrix expected_tn = ops::matmul(ops::transpose(a), b);
    for (std::size_t i = 0; i < tn.data().size(); ++i) {
        EXPECT_NEAR(tn.data()[i], expected_tn.data()[i], 1e-5F);
    }

    const Matrix c = random_matrix(6, 4, rng);
    const Matrix d = random_matrix(3, 4, rng);
    const Matrix nt = ops::matmul_nt(c, d);                       // c d^T
    const Matrix expected_nt = ops::matmul(c, ops::transpose(d));
    for (std::size_t i = 0; i < nt.data().size(); ++i) {
        EXPECT_NEAR(nt.data()[i], expected_nt.data()[i], 1e-5F);
    }
}

TEST(Ops, RowBroadcastAndColumnReductions) {
    const Matrix m{{1.0F, 2.0F}, {3.0F, 4.0F}};
    const Matrix bias{{10.0F, 20.0F}};
    const Matrix shifted = ops::add_row_broadcast(m, bias);
    EXPECT_FLOAT_EQ(shifted(1, 1), 24.0F);

    const Matrix sums = ops::col_sum(m);
    EXPECT_FLOAT_EQ(sums(0, 0), 4.0F);
    const Matrix means = ops::col_mean(m);
    EXPECT_FLOAT_EQ(means(0, 1), 3.0F);
    const Matrix vars = ops::col_var(m);
    EXPECT_FLOAT_EQ(vars(0, 0), 1.0F);  // population variance of {1, 3}
}

TEST(Ops, SoftmaxRowsIsNormalizedAndOrderPreserving) {
    Matrix m{{1.0F, 2.0F, 3.0F, -100.0F}};
    ops::softmax_rows_inplace(m, 0, 3);
    const float total = m(0, 0) + m(0, 1) + m(0, 2);
    EXPECT_NEAR(total, 1.0F, 1e-5F);
    EXPECT_LT(m(0, 0), m(0, 1));
    EXPECT_LT(m(0, 1), m(0, 2));
    EXPECT_FLOAT_EQ(m(0, 3), -100.0F);  // outside the span: untouched
}

TEST(Ops, SoftmaxIsStableForLargeLogits) {
    Matrix m{{1000.0F, 1001.0F}};
    ops::softmax_rows_inplace(m, 0, 2);
    EXPECT_TRUE(std::isfinite(m(0, 0)));
    EXPECT_NEAR(m(0, 0) + m(0, 1), 1.0F, 1e-5F);
}

TEST(Ops, RowArgmaxWithinSpan) {
    const Matrix m{{0.0F, 9.0F, 1.0F}, {7.0F, 2.0F, 3.0F}};
    const auto am = ops::row_argmax(m, 0, 3);
    EXPECT_EQ(am[0], 1U);
    EXPECT_EQ(am[1], 0U);
    const auto am_sub = ops::row_argmax(m, 1, 3);
    EXPECT_EQ(am_sub[0], 0U);  // relative to span start
    EXPECT_EQ(am_sub[1], 1U);
}

TEST(Ops, FrobeniusNormMatchesDefinition) {
    const Matrix m{{3.0F, 4.0F}};
    EXPECT_NEAR(ops::frobenius_norm(m), 5.0, 1e-9);
}

// Property sweep: (A·B)·C == A·(B·C) for random shapes.
class MatmulAssociativity : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(MatmulAssociativity, Holds) {
    const auto [m, k, n, p] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 1000 + k * 100 + n * 10 + p));
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    const Matrix c = random_matrix(n, p, rng);
    const Matrix left = ops::matmul(ops::matmul(a, b), c);
    const Matrix right = ops::matmul(a, ops::matmul(b, c));
    for (std::size_t i = 0; i < left.data().size(); ++i) {
        EXPECT_NEAR(left.data()[i], right.data()[i], 1e-3F);
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulAssociativity,
                         ::testing::Values(std::make_tuple(1, 1, 1, 1),
                                           std::make_tuple(2, 3, 4, 5),
                                           std::make_tuple(8, 1, 8, 2),
                                           std::make_tuple(5, 7, 3, 6),
                                           std::make_tuple(16, 16, 16, 16)));

}  // namespace
