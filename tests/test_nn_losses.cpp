// Analytic + finite-difference tests for the loss functions.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/nn/losses.hpp"

namespace {

using kinet::Rng;
using namespace kinet::nn;  // NOLINT
using Matrix = kinet::tensor::Matrix;

TEST(BceWithLogits, MatchesClosedFormAtZeroLogit) {
    const Matrix logits(2, 1, 0.0F);
    const Matrix targets(2, 1, 1.0F);
    const auto res = bce_with_logits(logits, targets);
    EXPECT_NEAR(res.value, std::log(2.0), 1e-6);
    // grad = (sigmoid(0) - 1) / n = -0.5 / 2.
    EXPECT_NEAR(res.grad(0, 0), -0.25F, 1e-6F);
}

TEST(BceWithLogits, StableForExtremeLogits) {
    Matrix logits{{100.0F, -100.0F}};
    Matrix targets{{1.0F, 0.0F}};
    const auto res = bce_with_logits(logits, targets);
    EXPECT_TRUE(std::isfinite(res.value));
    EXPECT_NEAR(res.value, 0.0, 1e-6);
    // Wrong-side extremes produce large but finite loss.
    Matrix bad_targets{{0.0F, 1.0F}};
    const auto bad = bce_with_logits(logits, bad_targets);
    EXPECT_TRUE(std::isfinite(bad.value));
    EXPECT_NEAR(bad.value, 100.0, 1e-3);
}

TEST(BceWithLogits, GradientMatchesFiniteDifference) {
    Rng rng(200);
    Matrix logits(3, 2);
    Matrix targets(3, 2);
    for (auto& v : logits.data()) {
        v = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
    for (auto& v : targets.data()) {
        v = rng.bernoulli(0.5) ? 1.0F : 0.0F;
    }
    const auto base = bce_with_logits(logits, targets);
    const float eps = 1e-3F;
    for (std::size_t i = 0; i < logits.data().size(); ++i) {
        const float saved = logits.data()[i];
        logits.data()[i] = saved + eps;
        const double lp = bce_with_logits(logits, targets).value;
        logits.data()[i] = saved - eps;
        const double lm = bce_with_logits(logits, targets).value;
        logits.data()[i] = saved;
        EXPECT_NEAR(base.grad.data()[i], (lp - lm) / (2.0 * eps), 1e-3);
    }
}

TEST(Mse, ValueAndGradient) {
    const Matrix pred{{2.0F, 0.0F}};
    const Matrix target{{1.0F, 0.0F}};
    const auto res = mse(pred, target);
    EXPECT_NEAR(res.value, 0.5, 1e-6);           // (1 + 0) / 2
    EXPECT_NEAR(res.grad(0, 0), 1.0F, 1e-6F);    // 2 * 1 / 2
    EXPECT_NEAR(res.grad(0, 1), 0.0F, 1e-6F);
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogK) {
    const Matrix logits(4, 5, 0.0F);
    const std::vector<std::size_t> labels = {0, 1, 2, 3};
    const auto res = softmax_cross_entropy(logits, labels);
    EXPECT_NEAR(res.value, std::log(5.0), 1e-5);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
    Rng rng(201);
    Matrix logits(3, 4);
    for (auto& v : logits.data()) {
        v = static_cast<float>(rng.uniform(-3.0, 3.0));
    }
    const std::vector<std::size_t> labels = {1, 3, 0};
    const auto res = softmax_cross_entropy(logits, labels);
    for (std::size_t r = 0; r < 3; ++r) {
        float total = 0.0F;
        for (std::size_t c = 0; c < 4; ++c) {
            total += res.grad(r, c);
        }
        EXPECT_NEAR(total, 0.0F, 1e-5F);
    }
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
    Rng rng(202);
    Matrix logits(2, 3);
    for (auto& v : logits.data()) {
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    const std::vector<std::size_t> labels = {2, 0};
    const auto base = softmax_cross_entropy(logits, labels);
    const float eps = 1e-3F;
    for (std::size_t i = 0; i < logits.data().size(); ++i) {
        const float saved = logits.data()[i];
        logits.data()[i] = saved + eps;
        const double lp = softmax_cross_entropy(logits, labels).value;
        logits.data()[i] = saved - eps;
        const double lm = softmax_cross_entropy(logits, labels).value;
        logits.data()[i] = saved;
        EXPECT_NEAR(base.grad.data()[i], (lp - lm) / (2.0 * eps), 1e-3);
    }
}

TEST(SoftmaxCrossEntropy, RejectsOutOfRangeLabel) {
    const Matrix logits(1, 2, 0.0F);
    const std::vector<std::size_t> labels = {2};
    EXPECT_THROW((void)softmax_cross_entropy(logits, labels), kinet::Error);
}

TEST(GaussianKl, ZeroAtStandardNormal) {
    const Matrix mu(3, 2, 0.0F);
    const Matrix logvar(3, 2, 0.0F);
    const auto res = gaussian_kl(mu, logvar);
    EXPECT_NEAR(res.value, 0.0, 1e-7);
    for (float g : res.grad_mu.data()) {
        EXPECT_NEAR(g, 0.0F, 1e-7F);
    }
    for (float g : res.grad_logvar.data()) {
        EXPECT_NEAR(g, 0.0F, 1e-7F);
    }
}

TEST(GaussianKl, PositiveAwayFromPriorAndGradCorrect) {
    Matrix mu(1, 1, 1.0F);
    Matrix logvar(1, 1, 0.5F);
    const auto base = gaussian_kl(mu, logvar);
    EXPECT_GT(base.value, 0.0);
    const float eps = 1e-3F;
    mu(0, 0) = 1.0F + eps;
    const double lp = gaussian_kl(mu, logvar).value;
    mu(0, 0) = 1.0F - eps;
    const double lm = gaussian_kl(mu, logvar).value;
    EXPECT_NEAR(base.grad_mu(0, 0), (lp - lm) / (2.0 * eps), 1e-3);

    mu(0, 0) = 1.0F;
    logvar(0, 0) = 0.5F + eps;
    const double vp = gaussian_kl(mu, logvar).value;
    logvar(0, 0) = 0.5F - eps;
    const double vm = gaussian_kl(mu, logvar).value;
    EXPECT_NEAR(base.grad_logvar(0, 0), (vp - vm) / (2.0 * eps), 1e-3);
}

TEST(Losses, RejectShapeMismatches) {
    EXPECT_THROW((void)bce_with_logits(Matrix(1, 2), Matrix(2, 1)), kinet::Error);
    EXPECT_THROW((void)mse(Matrix(1, 2), Matrix(1, 3)), kinet::Error);
    EXPECT_THROW((void)gaussian_kl(Matrix(1, 2), Matrix(2, 2)), kinet::Error);
}

}  // namespace
