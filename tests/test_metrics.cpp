// Tests for the statistical distance metrics (EMD axioms, combined distance).
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/data/split.hpp"
#include "src/eval/metrics.hpp"

namespace {

using kinet::Rng;
using namespace kinet::data;  // NOLINT
using namespace kinet::eval;  // NOLINT

Table gaussian_table(std::size_t rows, double mean, double stddev, double cat_p, Rng& rng) {
    Table t({
        ColumnMeta::continuous_column("x"),
        ColumnMeta::categorical_column("c", {"a", "b"}),
    });
    for (std::size_t r = 0; r < rows; ++r) {
        t.append_row({static_cast<float>(rng.normal(mean, stddev)),
                      rng.bernoulli(cat_p) ? 1.0F : 0.0F});
    }
    return t;
}

TEST(Emd, IdenticalTablesScoreNearZero) {
    Rng rng(1000);
    const Table t = gaussian_table(2000, 0.0, 1.0, 0.3, rng);
    EXPECT_NEAR(mean_emd(t, t), 0.0, 1e-9);
    EXPECT_NEAR(combined_distance(t, t), 0.0, 1e-9);
}

TEST(Emd, IsSymmetricForEqualSampleSizes) {
    Rng rng(1001);
    const Table a = gaussian_table(1500, 0.0, 1.0, 0.3, rng);
    const Table b = gaussian_table(1500, 0.8, 1.0, 0.5, rng);
    EXPECT_NEAR(mean_emd(a, b), mean_emd(b, a), 0.02);
}

TEST(Emd, GrowsWithMeanShift) {
    Rng rng(1002);
    const Table base = gaussian_table(1500, 0.0, 1.0, 0.3, rng);
    const Table near = gaussian_table(1500, 0.3, 1.0, 0.3, rng);
    const Table far = gaussian_table(1500, 2.0, 1.0, 0.3, rng);
    EXPECT_LT(column_emd(base, near, 0), column_emd(base, far, 0));
}

TEST(Emd, CategoricalEqualsTotalVariation) {
    Rng rng(1003);
    Table a({ColumnMeta::categorical_column("c", {"a", "b"})});
    Table b({ColumnMeta::categorical_column("c", {"a", "b"})});
    // a: 100% "a"; b: 50/50 -> TV = 0.5.
    for (int i = 0; i < 100; ++i) {
        a.append_row({0.0F});
        b.append_row({(i % 2 == 0) ? 0.0F : 1.0F});
    }
    EXPECT_NEAR(column_emd(a, b, 0), 0.5, 1e-9);
    EXPECT_NEAR(categorical_l1(a, b, 0), 1.0, 1e-9);  // L1 = 2 * TV
}

TEST(CombinedDistance, DetectsVarianceMismatch) {
    Rng rng(1004);
    const Table base = gaussian_table(1500, 0.0, 1.0, 0.3, rng);
    const Table same = gaussian_table(1500, 0.0, 1.0, 0.3, rng);
    const Table wide = gaussian_table(1500, 0.0, 3.0, 0.3, rng);
    EXPECT_LT(combined_distance(base, same), combined_distance(base, wide));
}

TEST(CorrelationDistance, DetectsBrokenCorrelation) {
    Rng rng(1005);
    Table corr({ColumnMeta::continuous_column("x"), ColumnMeta::continuous_column("y")});
    Table indep({ColumnMeta::continuous_column("x"), ColumnMeta::continuous_column("y")});
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal();
        corr.append_row({static_cast<float>(x), static_cast<float>(x + rng.normal(0.0, 0.1))});
        indep.append_row({static_cast<float>(rng.normal()), static_cast<float>(rng.normal())});
    }
    EXPECT_NEAR(correlation_distance(corr, corr), 0.0, 1e-9);
    EXPECT_GT(correlation_distance(corr, indep), 0.5);
}

TEST(LikelihoodFitness, HigherForInDistributionData) {
    Rng rng(1006);
    const Table real = gaussian_table(1500, 0.0, 1.0, 0.3, rng);
    TableTransformer tf;
    tf.fit(real, TransformerOptions{}, rng);

    const Table in_dist = gaussian_table(500, 0.0, 1.0, 0.3, rng);
    const Table out_dist = gaussian_table(500, 10.0, 1.0, 0.3, rng);
    EXPECT_GT(likelihood_fitness(tf, in_dist), likelihood_fitness(tf, out_dist));
}

TEST(MixedRowDistance, ZeroForIdenticalRowsAndBounded) {
    Rng rng(1007);
    const Table t = gaussian_table(100, 0.0, 1.0, 0.5, rng);
    const auto ranges = compute_ranges(t);
    const std::vector<std::size_t> cols = {0, 1};
    EXPECT_DOUBLE_EQ(mixed_row_distance(t, 3, t, 3, cols, ranges), 0.0);
    const double d = mixed_row_distance(t, 0, t, 1, cols, ranges);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.5);
}

TEST(Metrics, RejectIncompatibleTables) {
    Rng rng(1008);
    const Table a = gaussian_table(50, 0.0, 1.0, 0.5, rng);
    Table b({ColumnMeta::continuous_column("only")});
    b.append_row({1.0F});
    EXPECT_THROW((void)mean_emd(a, b), kinet::Error);
}

// Property sweep: for a held-out split of the same distribution, EMD is small
// across sample sizes.
class EmdSelfConsistency : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EmdSelfConsistency, HeldOutSplitHasSmallDistance) {
    Rng rng(1010 + GetParam());
    const Table t = gaussian_table(GetParam(), 1.0, 2.0, 0.4, rng);
    const auto split = train_test_split(t, 0.5, rng);
    EXPECT_LT(mean_emd(split.train, split.test), 0.1);
    EXPECT_LT(combined_distance(split.train, split.test), 0.15);
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, EmdSelfConsistency,
                         ::testing::Values(400U, 1000U, 3000U));

}  // namespace
