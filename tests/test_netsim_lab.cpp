// Tests for the lab IoT traffic simulator.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/kg/network_kg.hpp"
#include "src/netsim/address.hpp"
#include "src/netsim/device.hpp"
#include "src/netsim/events.hpp"
#include "src/netsim/lab_simulator.hpp"

namespace {

using namespace kinet::netsim;  // NOLINT
using kinet::Rng;

TEST(Address, RoundTripAndSubnet) {
    const auto addr = ipv4_from_string("192.168.1.42");
    EXPECT_EQ(ipv4_to_string(addr), "192.168.1.42");
    EXPECT_TRUE(is_lan(addr));
    EXPECT_FALSE(is_lan(ipv4_from_string("203.0.113.66")));
    EXPECT_EQ(lan_address(7), ipv4_from_string("192.168.1.7"));
    EXPECT_THROW((void)ipv4_from_string("1.2.3"), kinet::Error);
    EXPECT_THROW((void)ipv4_from_string("1.2.3.999"), kinet::Error);
    EXPECT_THROW((void)ipv4_from_string("a.b.c.d"), kinet::Error);
}

TEST(Devices, FleetCoversAllKindsWithUniqueAddresses) {
    Rng rng(800);
    const auto fleet = build_lab_fleet(rng);
    EXPECT_EQ(fleet.size(), kinet::kg::lab_devices().size());
    std::vector<std::string> ips;
    for (const auto& d : fleet) {
        ips.push_back(d.ip);
        if (d.kind == "attacker") {
            EXPECT_FALSE(is_lan(ipv4_from_string(d.ip)));
        } else {
            EXPECT_TRUE(is_lan(ipv4_from_string(d.ip)));
        }
    }
    std::sort(ips.begin(), ips.end());
    EXPECT_EQ(std::adjacent_find(ips.begin(), ips.end()), ips.end());
    EXPECT_EQ(device_of_kind(fleet, "camera").kind, "camera");
    EXPECT_THROW((void)device_of_kind(fleet, "toaster"), kinet::Error);
}

TEST(EventProfiles, ExistForEveryLabEventType) {
    for (const auto& spec : kinet::kg::lab_event_specs()) {
        const auto& profile = lab_event_profile(spec.event_type);
        EXPECT_GT(profile.mix_weight, 0.0);
    }
    EXPECT_THROW((void)lab_event_profile("nonsense"), kinet::Error);
}

TEST(EventProfiles, FloodDwarfsDnsInMagnitude) {
    Rng rng(801);
    double dns_bytes = 0.0;
    double flood_bytes = 0.0;
    for (int i = 0; i < 200; ++i) {
        dns_bytes += draw_flow_numbers(lab_event_profile("dns_query"), rng).bytes;
        flood_bytes += draw_flow_numbers(lab_event_profile("flood_attack"), rng).bytes;
    }
    EXPECT_GT(flood_bytes, 100.0 * dns_bytes);
}

TEST(LabSimulator, ProducesRequestedRecordCountAndSchema) {
    LabSimOptions opts;
    opts.records = 2000;
    const auto table = LabTrafficSimulator(opts).generate();
    EXPECT_EQ(table.rows(), 2000U);
    EXPECT_EQ(table.cols(), lab_schema().size());
    EXPECT_EQ(table.meta(lab_label_column()).name, "label");
}

TEST(LabSimulator, IsDeterministicPerSeed) {
    LabSimOptions opts;
    opts.records = 300;
    opts.seed = 99;
    const auto a = LabTrafficSimulator(opts).generate();
    const auto b = LabTrafficSimulator(opts).generate();
    ASSERT_EQ(a.rows(), b.rows());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t c = 0; c < a.cols(); ++c) {
            EXPECT_EQ(a.value(r, c), b.value(r, c));
        }
    }
    opts.seed = 100;
    const auto c = LabTrafficSimulator(opts).generate();
    bool any_diff = false;
    for (std::size_t r = 0; r < a.rows() && !any_diff; ++r) {
        any_diff = (a.value(r, 6) != c.value(r, 6));
    }
    EXPECT_TRUE(any_diff);
}

TEST(LabSimulator, EveryRecordIsKgValid) {
    LabSimOptions opts;
    opts.records = 3000;
    const auto table = LabTrafficSimulator(opts).generate();
    const auto kg = kinet::kg::NetworkKg::build_lab();
    const auto oracle = kg.make_oracle();

    std::vector<std::size_t> cols;
    for (const auto& attr : oracle.attribute_names()) {
        cols.push_back(table.column_index(attr));
    }
    for (std::size_t r = 0; r < table.rows(); ++r) {
        std::vector<std::string> tuple;
        tuple.reserve(cols.size());
        for (std::size_t c : cols) {
            tuple.push_back(table.label_at(r, c));
        }
        ASSERT_TRUE(oracle.is_valid(tuple)) << "row " << r << " violates the KG";
    }
}

TEST(LabSimulator, ClassImbalanceMatchesTheDomain) {
    LabSimOptions opts;
    opts.records = 8000;
    const auto table = LabTrafficSimulator(opts).generate();
    const auto counts = table.category_counts(lab_label_column());
    const auto& labels = kinet::kg::lab_labels();

    std::size_t benign = 0;
    std::size_t attacks = 0;
    for (std::size_t k = 0; k < labels.size(); ++k) {
        if (labels[k] == "benign") {
            benign += counts[k];
        } else {
            attacks += counts[k];
            EXPECT_GT(counts[k], 0U) << labels[k] << " missing entirely";
        }
    }
    const double attack_rate = static_cast<double>(attacks) / table.rows();
    EXPECT_GT(attack_rate, 0.02);
    EXPECT_LT(attack_rate, 0.25);
    EXPECT_GT(benign, attacks);
}

TEST(LabSimulator, AttackIntensityScalesAttackRate) {
    LabSimOptions quiet;
    quiet.records = 4000;
    quiet.attack_intensity = 0.2;
    LabSimOptions loud;
    loud.records = 4000;
    loud.attack_intensity = 4.0;

    auto attack_rate = [](const kinet::data::Table& t) {
        const auto counts = t.category_counts(lab_label_column());
        const auto& labels = kinet::kg::lab_labels();
        std::size_t attacks = 0;
        for (std::size_t k = 0; k < labels.size(); ++k) {
            if (labels[k] != "benign") {
                attacks += counts[k];
            }
        }
        return static_cast<double>(attacks) / t.rows();
    };
    EXPECT_LT(attack_rate(LabTrafficSimulator(quiet).generate()),
              attack_rate(LabTrafficSimulator(loud).generate()));
}

TEST(LabSimulator, NumericColumnsArePositiveAndFinite) {
    LabSimOptions opts;
    opts.records = 1000;
    const auto table = LabTrafficSimulator(opts).generate();
    for (std::size_t r = 0; r < table.rows(); ++r) {
        for (std::size_t c = 6; c <= 9; ++c) {
            const float v = table.value(r, c);
            EXPECT_TRUE(std::isfinite(v));
            EXPECT_GE(v, 0.0F);
        }
    }
}

TEST(LabSimulator, CorruptionInjectionProducesOutliers) {
    LabSimOptions opts;
    opts.records = 1000;
    opts.corruption_fraction = 0.05;
    const auto table = LabTrafficSimulator(opts).generate();
    std::size_t zero_pkts = 0;
    for (std::size_t r = 0; r < table.rows(); ++r) {
        zero_pkts += (table.value(r, 6) == 0.0F) ? 1 : 0;
    }
    EXPECT_GT(zero_pkts, 10U);  // corrupted records zero the packet count
}

TEST(LabSimulator, RejectsBadOptions) {
    LabSimOptions opts;
    opts.records = 0;
    EXPECT_THROW(LabTrafficSimulator{opts}, kinet::Error);
    opts.records = 10;
    opts.corruption_fraction = 1.5;
    EXPECT_THROW(LabTrafficSimulator{opts}, kinet::Error);
}

}  // namespace
