// Inference fast-path identity suite.
//
// The contract under test: (1) forward_inference is bitwise-equal to the
// train-shaped forward under eval semantics through every serving-path
// layer; (2) the pre-packed GEMM entry points are bitwise-equal to their
// packing counterparts, including odd/strided shapes and the n < NR no-pad
// path; (3) streaming/batched seeded sampling re-frames the row stream
// without changing a bit, for any chunk size; (4) one const model serves
// many concurrent seeded samplers, each matching its serial per-seed
// reference (the TSan target for the serving path).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/core/kinetgan.hpp"
#include "src/kg/network_kg.hpp"
#include "src/netsim/lab_simulator.hpp"
#include "src/nn/nn.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/ops.hpp"

namespace {

using kinet::Rng;
using kinet::tensor::Matrix;
using kinet::tensor::PackedGemmB;
namespace ops = kinet::tensor;
namespace nn = kinet::nn;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
    Matrix m(r, c);
    for (auto& v : m.data()) {
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    return m;
}

// ------------------------------------------------------- packed GEMM

TEST(PackedGemm, BitwiseIdenticalToUnpackedAcrossShapes) {
    Rng rng(301);
    // Shapes straddling MR/NR/KC edges plus n < NR (both kernels' widths).
    const std::size_t shapes[][3] = {{1, 1, 1},    {2, 5, 3},     {4, 8, 8},    {7, 17, 15},
                                     {6, 16, 16},  {13, 257, 31}, {65, 129, 33}, {97, 511, 130},
                                     {128, 96, 1}, {96, 300, 4},  {33, 40, 7},  {256, 64, 12}};
    for (const auto& s : shapes) {
        const Matrix a = random_matrix(s[0], s[1], rng);
        const Matrix b = random_matrix(s[1], s[2], rng);
        const PackedGemmB packed = ops::pack_gemm_b(b);
        EXPECT_EQ(packed.k(), b.rows());
        EXPECT_EQ(packed.n(), b.cols());
        EXPECT_EQ(ops::matmul_packed(a, packed), ops::matmul(a, b))
            << s[0] << "x" << s[1] << "x" << s[2];
        const Matrix bias = random_matrix(1, s[2], rng);
        EXPECT_EQ(ops::matmul_packed_bias(a, packed, bias), ops::matmul_bias(a, b, bias))
            << s[0] << "x" << s[1] << "x" << s[2];
    }
}

TEST(PackedGemm, StridedOperandPacksIdentically) {
    // Packing Bᵀ through a strided view must equal packing the
    // materialised transpose — the engine reads operands through (rs, cs).
    Rng rng(302);
    const Matrix b = random_matrix(37, 113, rng);
    const Matrix bt = ops::transpose(b);  // 113 x 37
    const PackedGemmB from_view =
        PackedGemmB::pack(b.cols(), b.rows(), {b.data().data(), 1, b.cols()});
    const PackedGemmB from_copy = ops::pack_gemm_b(bt);
    ASSERT_EQ(from_view.size(), from_copy.size());
    for (std::size_t i = 0; i < from_view.size(); ++i) {
        ASSERT_EQ(from_view.data()[i], from_copy.data()[i]) << "at " << i;
    }
    const Matrix a = random_matrix(21, b.cols(), rng);
    EXPECT_EQ(ops::matmul_packed(a, from_view), ops::matmul(a, bt));
}

TEST(PackedGemm, ReuseAcrossCallsIsStable) {
    Rng rng(303);
    const Matrix b = random_matrix(96, 160, rng);
    const PackedGemmB packed = ops::pack_gemm_b(b);
    const Matrix a0 = random_matrix(64, 96, rng);
    const Matrix first = ops::matmul_packed(a0, packed);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(ops::matmul_packed(a0, packed), first);
        const Matrix ai = random_matrix(8, 96, rng);
        EXPECT_EQ(ops::matmul_packed(ai, packed), ops::matmul(ai, b));
    }
}

TEST(PackedGemm, DegenerateShapes) {
    Rng rng(304);
    // k == 0: zeros (or broadcast bias).
    const Matrix a(3, 0);
    const Matrix b(0, 5);
    const PackedGemmB packed = ops::pack_gemm_b(b);
    EXPECT_EQ(ops::matmul_packed(a, packed), ops::matmul(a, b));
    const Matrix bias = random_matrix(1, 5, rng);
    EXPECT_EQ(ops::matmul_packed_bias(a, packed, bias), ops::matmul_bias(a, b, bias));
    // Mismatched inner dimension throws before any work.
    const Matrix wrong = random_matrix(3, 4, rng);
    EXPECT_THROW((void)ops::matmul_packed(wrong, packed), kinet::Error);
}

TEST(SmallNGemm, NoPadPathMatchesPaddedEngineBitwise) {
    // A small-n product must equal the corresponding columns of the same
    // product against B padded with zero columns past every kernel's NR —
    // exactly the arithmetic the old zero-padding path performed.
    Rng rng(305);
    for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
        const Matrix a = random_matrix(130, 96, rng);
        const Matrix b_small = random_matrix(96, n, rng);
        Matrix b_wide(96, n + 16);  // >= NR for both kernels
        for (std::size_t r = 0; r < b_small.rows(); ++r) {
            for (std::size_t c = 0; c < n; ++c) {
                b_wide(r, c) = b_small(r, c);
            }
        }
        const Matrix got = ops::matmul(a, b_small);
        const Matrix wide = ops::matmul(a, b_wide);
        for (std::size_t r = 0; r < got.rows(); ++r) {
            for (std::size_t c = 0; c < n; ++c) {
                ASSERT_EQ(got(r, c), wide(r, c)) << "n=" << n << " at (" << r << "," << c << ")";
            }
        }
    }
}

TEST(JcParallelGemm, ColumnPartitionDoesNotChangePerRowMath) {
    // m tiny + n wide selects the jc-parallel drive; every row must still
    // be bitwise-identical to the same row inside a tall product that
    // takes the row-partition path.
    Rng rng(306);
    const Matrix a_small = random_matrix(4, 64, rng);
    const Matrix b = random_matrix(64, 2048, rng);
    const Matrix c_jc = ops::matmul(a_small, b);
    Matrix a_big = random_matrix(396, 64, rng);
    for (std::size_t c = 0; c < a_small.cols(); ++c) {
        for (std::size_t r = 0; r < a_small.rows(); ++r) {
            a_big(r, c) = a_small(r, c);
        }
    }
    const Matrix c_big = ops::matmul(a_big, b);
    for (std::size_t r = 0; r < a_small.rows(); ++r) {
        for (std::size_t c = 0; c < b.cols(); ++c) {
            ASSERT_EQ(c_jc(r, c), c_big(r, c)) << "at (" << r << "," << c << ")";
        }
    }
    // And the packed drive agrees on the same shape.
    EXPECT_EQ(ops::matmul_packed(a_small, ops::pack_gemm_b(b)), c_jc);
}

// ------------------------------------------------- nn forward_inference

TEST(ForwardInference, BitwiseEqualsEvalForwardThroughServingLayers) {
    Rng rng(310);
    nn::Sequential net;
    net.emplace<nn::Linear>(24, 48, rng, "fi.fc0");
    net.emplace<nn::BatchNorm1d>(48);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Dropout>(0.3F, rng);
    net.emplace<nn::Linear>(48, 32, rng, "fi.fc1");
    net.emplace<nn::LeakyReLU>(0.2F);
    net.emplace<nn::Linear>(32, 9, rng, "fi.out");
    net.emplace<nn::Tanh>();

    // Move the BatchNorm running statistics off their initial values so the
    // eval path actually exercises them.
    for (int step = 0; step < 3; ++step) {
        (void)net.forward(random_matrix(32, 24, rng), true);
    }

    nn::InferenceContext ctx;
    Matrix out;
    for (const std::size_t rows : {std::size_t{1}, std::size_t{17}, std::size_t{128}}) {
        const Matrix x = random_matrix(rows, 24, rng);
        const Matrix want = net.forward(x, false);
        net.forward_inference(x, out, ctx);
        EXPECT_EQ(out, want) << "rows=" << rows;
        // Warm-context reuse must not change anything either.
        net.forward_inference(x, out, ctx);
        EXPECT_EQ(out, want) << "rows=" << rows << " (reused context)";
    }
}

TEST(ForwardInference, SigmoidAndDirectDropoutMatchToo) {
    Rng rng(311);
    nn::Sigmoid sigmoid;
    nn::Dropout dropout(0.5F, rng);
    nn::InferenceContext ctx;
    const Matrix x = random_matrix(9, 13, rng);
    Matrix out;
    sigmoid.forward_inference(x, out, ctx);
    EXPECT_EQ(out, sigmoid.forward(x, false));
    EXPECT_TRUE(dropout.inference_identity());
    dropout.forward_inference(x, out, ctx);
    EXPECT_EQ(out, x);
}

TEST(ForwardInference, ConcurrentCallersOnOneConstNetAgree) {
    Rng rng(312);
    nn::Sequential net;
    net.emplace<nn::Linear>(16, 64, rng, "cc.fc0");
    net.emplace<nn::BatchNorm1d>(64);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Linear>(64, 8, rng, "cc.out");
    (void)net.forward(random_matrix(16, 16, rng), true);

    constexpr int kThreads = 6;
    std::vector<Matrix> inputs;
    std::vector<Matrix> expected;
    inputs.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        inputs.push_back(random_matrix(33, 16, rng));
        expected.push_back(net.forward(inputs.back(), false));
    }
    // The packed-weight build races benignly behind its mutex; results must
    // be the serial ones regardless of interleaving.
    std::vector<Matrix> got(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    const nn::Sequential& cnet = net;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            nn::InferenceContext ctx;
            for (int round = 0; round < 5; ++round) {
                cnet.forward_inference(inputs[static_cast<std::size_t>(t)],
                                       got[static_cast<std::size_t>(t)], ctx);
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(got[static_cast<std::size_t>(t)], expected[static_cast<std::size_t>(t)])
            << "thread " << t;
    }
}

// ------------------------------------------------- streaming sampling

kinet::core::KiNetGanOptions tiny_options(std::uint64_t seed) {
    kinet::core::KiNetGanOptions opts;
    opts.gan.epochs = 2;
    opts.gan.batch_size = 64;
    opts.gan.hidden_dim = 32;
    opts.gan.noise_dim = 16;
    opts.gan.seed = seed;
    opts.transformer.max_modes = 3;
    return opts;
}

std::unique_ptr<kinet::core::KiNetGan> tiny_model(std::uint64_t seed = 1) {
    kinet::netsim::LabSimOptions sim;
    sim.records = 400;
    sim.seed = 11;
    const auto table = kinet::netsim::LabTrafficSimulator(sim).generate();
    const auto kg = kinet::kg::NetworkKg::build_lab();
    auto model = std::make_unique<kinet::core::KiNetGan>(
        kg.make_oracle(), kinet::netsim::lab_conditional_columns(), tiny_options(seed));
    model->fit(table);
    return model;
}

class SampleStreamTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() { model_ = tiny_model().release(); }
    static void TearDownTestSuite() {
        delete model_;
        model_ = nullptr;
    }
    static kinet::core::KiNetGan* model_;
};

kinet::core::KiNetGan* SampleStreamTest::model_ = nullptr;

TEST_F(SampleStreamTest, BatchedStreamIsIdenticalToUnbatchedForAnyChunkSize) {
    constexpr std::size_t kRows = 337;  // not a multiple of batch or chunk
    const kinet::data::Table whole = model_->sample_seeded(kRows, 99);
    ASSERT_EQ(whole.rows(), kRows);
    for (const std::size_t chunk :
         {std::size_t{1}, std::size_t{50}, std::size_t{64}, std::size_t{1000}}) {
        kinet::data::Table streamed(model_->schema());
        std::vector<std::size_t> sizes;
        model_->sample_seeded_stream(kRows, 99, chunk, [&](const kinet::data::Table& part) {
            sizes.push_back(part.rows());
            streamed.append_rows(part);
        });
        ASSERT_EQ(streamed.rows(), kRows) << "chunk=" << chunk;
        EXPECT_EQ(streamed.matrix(), whole.matrix()) << "chunk=" << chunk;
        // Exact partition: every chunk full except possibly the last.
        for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
            EXPECT_EQ(sizes[i], chunk);
        }
        if (!sizes.empty()) {
            EXPECT_EQ(sizes.back(), kRows - (sizes.size() - 1) * chunk);
        }
    }
}

TEST_F(SampleStreamTest, ConditionalStreamMatchesConditionalSample) {
    const kinet::data::Table whole = model_->sample_conditional_seeded(150, "protocol", "TCP", 5);
    kinet::data::Table streamed(model_->schema());
    model_->sample_conditional_seeded_stream(
        150, "protocol", "TCP", 5, 47,
        [&](const kinet::data::Table& part) { streamed.append_rows(part); });
    // (Adherence to the pinned value is a training-quality property, not a
    // plumbing one — identity of the two paths is what is under test.)
    EXPECT_EQ(streamed.matrix(), whole.matrix());
}

TEST_F(SampleStreamTest, ConcurrentSeededSamplersMatchTheirSerialReference) {
    constexpr int kClients = 6;
    constexpr std::size_t kRows = 120;
    std::vector<kinet::data::Table> expected;
    expected.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        expected.push_back(model_->sample_seeded(kRows, 1000 + static_cast<std::uint64_t>(c)));
    }
    // All clients share the one const model — no clones, no locks.
    std::vector<kinet::data::Table> got(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    const kinet::core::KiNetGan& cmodel = *model_;
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            got[static_cast<std::size_t>(c)] =
                cmodel.sample_seeded(kRows, 1000 + static_cast<std::uint64_t>(c));
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    for (int c = 0; c < kClients; ++c) {
        EXPECT_EQ(got[static_cast<std::size_t>(c)].matrix(),
                  expected[static_cast<std::size_t>(c)].matrix())
            << "client " << c;
    }
}

TEST_F(SampleStreamTest, ZeroRowsAndNullSink) {
    std::size_t calls = 0;
    model_->sample_seeded_stream(0, 1, 10,
                                 [&](const kinet::data::Table&) { ++calls; });
    EXPECT_EQ(calls, 0U);
    EXPECT_THROW(model_->sample_seeded_stream(10, 1, 10, nullptr), kinet::Error);
}

}  // namespace
