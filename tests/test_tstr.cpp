// Tests for the TSTR (train-synthetic-test-real) harness.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/data/split.hpp"
#include "src/eval/tstr.hpp"
#include "src/netsim/lab_simulator.hpp"

namespace {

using namespace kinet::eval;  // NOLINT
using kinet::data::Table;

Table lab_table(std::size_t rows) {
    kinet::netsim::LabSimOptions opts;
    opts.records = rows;
    opts.seed = 31;
    return kinet::netsim::LabTrafficSimulator(opts).generate();
}

TEST(Tstr, RunsAllSixClassifiers) {
    const Table t = lab_table(1200);
    kinet::Rng rng(1);
    const auto split = kinet::data::train_test_split(t, 0.3, rng,
                                                     kinet::netsim::lab_label_column());
    const auto results =
        evaluate_tstr(split.train, split.test, kinet::netsim::lab_label_column());
    ASSERT_EQ(results.size(), 6U);
    std::vector<std::string> names;
    for (const auto& r : results) {
        names.push_back(r.classifier);
        EXPECT_GE(r.accuracy, 0.0);
        EXPECT_LE(r.accuracy, 1.0);
        EXPECT_GE(r.macro_f1, 0.0);
        EXPECT_LE(r.macro_f1, 1.0);
    }
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(Tstr, RealOnRealBaselineIsStrong) {
    // The lab labels are nearly determined by the conditional attributes, so
    // train-on-real/test-on-real must be close to perfect — this validates
    // the whole pipeline (encoding, classifiers, metrics).
    const Table t = lab_table(2000);
    kinet::Rng rng(2);
    const auto split = kinet::data::train_test_split(t, 0.3, rng,
                                                     kinet::netsim::lab_label_column());
    const auto results =
        evaluate_tstr(split.train, split.test, kinet::netsim::lab_label_column());
    EXPECT_GT(average_accuracy(results), 0.9);
}

TEST(Tstr, GarbageTrainingDataScoresPoorly) {
    const Table real = lab_table(800);
    kinet::Rng rng(3);
    const auto split = kinet::data::train_test_split(real, 0.4, rng,
                                                     kinet::netsim::lab_label_column());

    // Shuffle the labels of the training side: utility must collapse.
    Table garbage = split.train;
    const std::size_t label_col = kinet::netsim::lab_label_column();
    const auto perm = rng.permutation(garbage.rows());
    for (std::size_t r = 0; r < garbage.rows(); ++r) {
        garbage.set_value(r, label_col, split.train.value(perm[r], label_col));
    }
    const auto garbage_results = evaluate_tstr(garbage, split.test, label_col);
    const auto real_results = evaluate_tstr(split.train, split.test, label_col);
    EXPECT_LT(average_accuracy(garbage_results) + 0.05, average_accuracy(real_results));
}

TEST(Tstr, MaxTrainRowsCapIsApplied) {
    const Table t = lab_table(1500);
    kinet::Rng rng(4);
    const auto split = kinet::data::train_test_split(t, 0.3, rng,
                                                     kinet::netsim::lab_label_column());
    TstrOptions opts;
    opts.max_train_rows = 200;  // heavy subsample still runs end to end
    const auto results = evaluate_tstr(split.train, split.test,
                                       kinet::netsim::lab_label_column(), opts);
    EXPECT_EQ(results.size(), 6U);
}

TEST(Tstr, AverageAccuracyRejectsEmpty) {
    EXPECT_THROW((void)average_accuracy({}), kinet::Error);
}

}  // namespace
