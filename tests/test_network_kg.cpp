// Tests for the domain NetworkKG and the compiled validity oracle.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/kg/network_kg.hpp"
#include "src/kg/ontology.hpp"
#include "src/kg/reasoner.hpp"

namespace {

using namespace kinet::kg;  // NOLINT

TEST(NetworkKg, LabOracleAcceptsEverySpecTuple) {
    const auto kg = NetworkKg::build_lab();
    const auto oracle = kg.make_oracle();
    ASSERT_EQ(oracle.attribute_names().size(), 5U);

    for (const auto& spec : lab_event_specs()) {
        for (const auto& device : spec.src_devices) {
            const std::vector<std::string> tuple = {device, spec.protocol, spec.app_protocol,
                                                    spec.dst_port, spec.event_type};
            EXPECT_TRUE(oracle.is_valid(tuple))
                << spec.event_type << " from " << device << " should be valid";
        }
    }
}

TEST(NetworkKg, LabOracleRejectsCrossWiredTuples) {
    const auto kg = NetworkKg::build_lab();
    const auto oracle = kg.make_oracle();

    // DNS query to port 443 is the paper's canonical invalid combination.
    const std::vector<std::string> bad_port = {"camera", "UDP", "DNS", "443", "dns_query"};
    EXPECT_FALSE(oracle.is_valid(bad_port));

    // A motion sensor cannot emit video streams.
    const std::vector<std::string> bad_device = {"motion_sensor", "TCP", "HTTPS", "443",
                                                 "video_stream"};
    EXPECT_FALSE(oracle.is_valid(bad_device));

    // Protocol/application mismatch.
    const std::vector<std::string> bad_proto = {"camera", "UDP", "HTTPS", "443",
                                                "motion_detected"};
    EXPECT_FALSE(oracle.is_valid(bad_proto));
}

TEST(NetworkKg, OracleEnumerationMatchesSpecCount) {
    const auto kg = NetworkKg::build_lab();
    const auto oracle = kg.make_oracle();
    std::size_t expected = 0;
    for (const auto& spec : lab_event_specs()) {
        expected += spec.src_devices.size();
    }
    EXPECT_EQ(oracle.valid_tuples().size(), expected);
}

TEST(NetworkKg, PortsForEventQueries) {
    const auto kg = NetworkKg::build_lab();
    const auto dns_ports = kg.ports_for_event("dns_query");
    ASSERT_EQ(dns_ports.size(), 1U);
    EXPECT_EQ(dns_ports[0], "53");
    EXPECT_TRUE(kg.ports_for_event("no_such_event").empty());
}

TEST(NetworkKg, EventsForDeviceQueries) {
    const auto kg = NetworkKg::build_lab();
    const auto camera_events = kg.events_for_device("camera");
    EXPECT_NE(std::find(camera_events.begin(), camera_events.end(), "video_stream"),
              camera_events.end());
    EXPECT_EQ(std::find(camera_events.begin(), camera_events.end(), "flood_attack"),
              camera_events.end());
    const auto attacker_events = kg.events_for_device("attacker");
    EXPECT_EQ(attacker_events.size(), 4U);
}

TEST(NetworkKg, Cve19990003PortRange) {
    const auto kg = NetworkKg::build_lab();
    const auto [lo, hi] = kg.attack_port_range("CVE-1999-0003");
    EXPECT_DOUBLE_EQ(lo, 32771.0);
    EXPECT_DOUBLE_EQ(hi, 34000.0);
    EXPECT_TRUE(kg.port_in_attack_range(33000, "CVE-1999-0003"));
    EXPECT_FALSE(kg.port_in_attack_range(80, "CVE-1999-0003"));
    EXPECT_THROW((void)kg.attack_port_range("CVE-0000-0000"), kinet::Error);
}

TEST(NetworkKg, OntologyHierarchyIsMaterialized) {
    const auto kg = NetworkKg::build_lab();
    // EventType ⊑ NetworkEvent ⊑ uco:Event, so instances inherit all types.
    EXPECT_TRUE(Reasoner::is_instance_of(kg.store(), "event:dns_query",
                                         std::string(vocab::net_event_type)));
    EXPECT_TRUE(kg.store().contains("event:dns_query", vocab::rdf_type, vocab::uco_event));
}

TEST(NetworkKg, UnswOracleEncodesProtocolConsistency) {
    const auto kg = NetworkKg::build_unsw();
    const auto oracle = kg.make_oracle();
    ASSERT_EQ(oracle.attribute_names().size(), 3U);

    const std::vector<std::string> ok = {"tcp", "http", "FIN"};
    EXPECT_TRUE(oracle.is_valid(ok));
    const std::vector<std::string> dns_udp = {"udp", "dns", "CON"};
    EXPECT_TRUE(oracle.is_valid(dns_udp));

    // http over udp is invalid; so is a FIN state on udp.
    const std::vector<std::string> bad_service = {"udp", "http", "CON"};
    EXPECT_FALSE(oracle.is_valid(bad_service));
    const std::vector<std::string> bad_state = {"udp", "dns", "FIN"};
    EXPECT_FALSE(oracle.is_valid(bad_state));
}

TEST(ValidityOracle, RejectsArityMismatch) {
    const auto kg = NetworkKg::build_unsw();
    const auto oracle = kg.make_oracle();
    const std::vector<std::string> short_tuple = {"tcp", "http"};
    EXPECT_THROW((void)oracle.is_valid(short_tuple), kinet::Error);
}

TEST(NetworkKg, VocabulariesAreUniqueAndNonEmpty) {
    for (const auto* vocab_list :
         {&lab_devices(), &lab_protocols(), &lab_app_protocols(), &lab_ports(),
          &lab_event_types(), &lab_labels(), &lab_endpoints()}) {
        EXPECT_FALSE(vocab_list->empty());
        auto sorted = *vocab_list;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
    }
    EXPECT_EQ(unsw_attack_categories().size(), 10U);  // Normal + 9 attacks
}

}  // namespace
