// Federated fleet tests: ring placement, cluster config parsing, and a
// real 3-node in-process fleet exercising the full peer path — transparent
// forwarding (framed and streaming), REPLICATE/FETCH round-trips,
// pull-through caching, FEDTRAIN publish, async-TRAIN proxy jobs, peer
// health/failover, and the client's reconnect-on-reset retry.
//
// Every fleet test computes placement dynamically: members are named by
// their ephemeral 127.0.0.1:port address, so which node owns a given model
// name changes run to run — the tests ask the ring instead of assuming.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/csv.hpp"
#include "src/service/client.hpp"
#include "src/service/cluster/breaker.hpp"
#include "src/service/cluster/cluster.hpp"
#include "src/service/cluster/config.hpp"
#include "src/service/cluster/membership.hpp"
#include "src/service/cluster/ring.hpp"
#include "src/service/protocol.hpp"
#include "src/service/server.hpp"
#include "src/service/snapshot.hpp"

namespace {

using namespace kinet;           // NOLINT
using namespace kinet::service;  // NOLINT

// ---------------------------------------------------------------- ring

TEST(HashRing, OwnershipIsDeterministicAndTotal) {
    const HashRing ring({"a:1", "b:2", "c:3"}, 64);
    for (const char* key : {"alpha", "beta", "gamma", "delta", ""}) {
        const std::string& owner = ring.owner_of(key);
        EXPECT_EQ(owner, ring.owner_of(key)) << key;  // stable
        EXPECT_TRUE(owner == "a:1" || owner == "b:2" || owner == "c:3");
    }
}

TEST(HashRing, MembersAgreeRegardlessOfConstructionOrder) {
    // Placement must be a pure function of the member *set*, or different
    // nodes would route the same model to different owners.
    const HashRing forward({"a:1", "b:2", "c:3"}, 64);
    const HashRing backward({"c:3", "b:2", "a:1"}, 64);
    for (int i = 0; i < 200; ++i) {
        const std::string key = "model-" + std::to_string(i);
        EXPECT_EQ(forward.owner_of(key), backward.owner_of(key)) << key;
        EXPECT_EQ(forward.preference(key, 2), backward.preference(key, 2)) << key;
    }
}

TEST(HashRing, VirtualNodesSpreadPlacement) {
    const HashRing ring({"a:1", "b:2", "c:3"}, 64);
    std::map<std::string, int> counts;
    for (int i = 0; i < 600; ++i) {
        counts[ring.owner_of("m" + std::to_string(i))]++;
    }
    ASSERT_EQ(counts.size(), 3U) << "some member owns nothing";
    for (const auto& [node, n] : counts) {
        // 600 keys over 3 nodes with 64 vnodes: no node should be wildly
        // off a fair share (a degenerate hash would put ~all on one node).
        EXPECT_GT(n, 60) << node;
        EXPECT_LT(n, 400) << node;
    }
}

TEST(HashRing, PreferenceListsAreDistinctAndStartAtTheOwner) {
    const HashRing ring({"a:1", "b:2", "c:3"}, 32);
    for (int i = 0; i < 50; ++i) {
        const std::string key = "k" + std::to_string(i);
        const auto pref = ring.preference(key, 2);
        ASSERT_EQ(pref.size(), 2U);
        EXPECT_EQ(pref[0], ring.owner_of(key));
        EXPECT_NE(pref[0], pref[1]);
    }
    // Asking for more replicas than members clamps to the member count.
    EXPECT_EQ(ring.preference("x", 9).size(), 3U);
    // A single-node ring owns everything.
    const HashRing solo({"only:1"}, 8);
    EXPECT_EQ(solo.owner_of("anything"), "only:1");
}

// ---------------------------------------------------------------- config

TEST(ClusterConfigParse, PeerListAndAddressForms) {
    const PeerAddress self{"127.0.0.1", 9190};
    const ClusterConfig cfg =
        parse_peer_list(self, "127.0.0.1:9191, 127.0.0.1:9192,127.0.0.1:9190");
    EXPECT_EQ(cfg.self.name(), "127.0.0.1:9190");
    // Self and duplicates are dropped from the peer set.
    ASSERT_EQ(cfg.peers.size(), 2U);
    EXPECT_EQ(cfg.peers[0].name(), "127.0.0.1:9191");
    EXPECT_EQ(cfg.peers[1].name(), "127.0.0.1:9192");

    EXPECT_THROW((void)parse_peer_address("nohost"), Error);
    EXPECT_THROW((void)parse_peer_address("h:"), Error);
    EXPECT_THROW((void)parse_peer_address(":123"), Error);
    EXPECT_THROW((void)parse_peer_address("h:0"), Error);
    EXPECT_THROW((void)parse_peer_address("h:70000"), Error);
    EXPECT_THROW((void)parse_peer_address("h:12x"), Error);
}

TEST(ClusterConfigParse, FileFormRoundTrips) {
    const std::string path = ::testing::TempDir() + "kinet_cluster_test.conf";
    {
        std::ofstream out(path);
        out << "# three-site fleet\n"
            << "self 10.0.0.1:9190\n"
            << "peer 10.0.0.2:9190\n"
            << "peer 10.0.0.3:9190\n"
            << "virtual-nodes 32\n"
            << "replicas 3\n"
            << "probe-interval-ms 250\n";
    }
    const ClusterConfig cfg = load_cluster_config(path);
    EXPECT_EQ(cfg.self.name(), "10.0.0.1:9190");
    ASSERT_EQ(cfg.peers.size(), 2U);
    EXPECT_EQ(cfg.virtual_nodes, 32U);
    EXPECT_EQ(cfg.replicas, 3U);
    EXPECT_EQ(cfg.probe_interval_ms, 250U);
    std::remove(path.c_str());

    EXPECT_THROW((void)load_cluster_config("/nonexistent/cluster.conf"), Error);
    {
        std::ofstream out(path);
        out << "peer 10.0.0.2:9190\n";  // no self line
    }
    EXPECT_THROW((void)load_cluster_config(path), Error);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------- fleet

/// Builds the ClusterConfig for member `self_index` of `addrs`.
ClusterConfig fleet_config(const std::vector<PeerAddress>& addrs, std::size_t self_index) {
    ClusterConfig cfg;
    cfg.self = addrs[self_index];
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        if (i != self_index) {
            cfg.peers.push_back(addrs[i]);
        }
    }
    cfg.replicas = 2;
    cfg.probe_interval_ms = 100;
    cfg.connect_timeout_ms = 1000;
    cfg.peer_timeout_ms = 30000;
    return cfg;
}

/// Shared 3-node fleet: servers on ephemeral ports, clustered after start
/// (ports are only known then), one model trained on its ring owner.
class FleetTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        std::vector<PeerAddress> addrs;
        for (std::size_t i = 0; i < 3; ++i) {
            ServerOptions options;
            options.train_workers = 2;
            servers_[i] = new SynthServer(options);
            servers_[i]->start();
            addrs.push_back(PeerAddress{"127.0.0.1", servers_[i]->port()});
        }
        for (std::size_t i = 0; i < 3; ++i) {
            servers_[i]->enable_cluster(fleet_config(addrs, i));
        }
        owned_ = new std::string(model_owned_by(0));
        const Response r = servers_[0]->handle(parse_request(
            "TRAIN " + *owned_ + " records=400 sim-seed=11 epochs=2 gan-seed=1"));
        ASSERT_TRUE(r.ok) << r.error;
        // The owner trained it locally: no peer has a copy yet, so every
        // cross-node read below genuinely exercises the peer path.
        EXPECT_NE(servers_[0]->registry().get(*owned_), nullptr);
        EXPECT_EQ(servers_[1]->registry().get(*owned_), nullptr);
        EXPECT_EQ(servers_[2]->registry().get(*owned_), nullptr);
    }
    static void TearDownTestSuite() {
        for (auto*& server : servers_) {
            delete server;
            server = nullptr;
        }
        delete owned_;
        owned_ = nullptr;
    }

    /// A model name the fleet places on node `index` (ephemeral ports make
    /// placement run-dependent, so names are found, not hardcoded).
    static std::string model_owned_by(std::size_t index) {
        const auto c = servers_[index]->cluster();
        for (int i = 0; i < 4096; ++i) {
            const std::string name = "fleet-" + std::to_string(i);
            if (c->owns(name)) {
                return name;
            }
        }
        ADD_FAILURE() << "ring never placed any name on member " << index;
        return "fleet-unplaced";
    }

    static SynthServer* servers_[3];
    static std::string* owned_;  // model name owned (and trained) on node 0
};

SynthServer* FleetTest::servers_[3] = {nullptr, nullptr, nullptr};
std::string* FleetTest::owned_ = nullptr;

TEST_F(FleetTest, MembersAgreeOnPlacement) {
    for (int i = 0; i < 40; ++i) {
        const std::string name = "agree-" + std::to_string(i);
        const std::string owner = servers_[0]->cluster()->owner_of(name);
        EXPECT_EQ(servers_[1]->cluster()->owner_of(name), owner);
        EXPECT_EQ(servers_[2]->cluster()->owner_of(name), owner);
        EXPECT_EQ(servers_[1]->cluster()->preference(name),
                  servers_[0]->cluster()->preference(name));
    }
}

TEST_F(FleetTest, ClusterOpReportsRingAndHealth) {
    auto client = SynthClient::connect("127.0.0.1", servers_[1]->port());
    const auto view = client.cluster(*owned_);
    EXPECT_EQ(view.at("enabled"), "1");
    EXPECT_EQ(view.at("self"), servers_[1]->cluster()->self_name());
    EXPECT_EQ(view.at("members"), "3");
    EXPECT_EQ(view.at("members_up"), "3");
    EXPECT_EQ(view.at("owner"), servers_[0]->cluster()->self_name());
    client.quit();

    // Standalone daemons answer CLUSTER too — with the feature off.
    SynthServer solo;
    solo.start();
    auto solo_client = SynthClient::connect("127.0.0.1", solo.port());
    EXPECT_EQ(solo_client.cluster().at("enabled"), "0");
    solo_client.quit();
    solo.stop();
}

TEST_F(FleetTest, ForwardedSampleIsByteIdenticalToOwnerDirect) {
    auto direct = SynthClient::connect("127.0.0.1", servers_[0]->port());
    auto via_peer = SynthClient::connect("127.0.0.1", servers_[1]->port());
    const std::string expect = direct.sample_csv(*owned_, 120, 77);
    const std::uint64_t forwards_before = servers_[1]->cluster()->forwards.load();

    // Framed: the non-owner proxies to the owner and relays the bytes.
    EXPECT_EQ(via_peer.sample_csv(*owned_, 120, 77), expect);
    EXPECT_GT(servers_[1]->cluster()->forwards.load(), forwards_before);
    // Forwarding relays, it does not cache: the model stays remote.
    EXPECT_EQ(servers_[1]->registry().get(*owned_), nullptr);

    // Streaming: the relay preserves content through CHUNK/END framing.
    std::string streamed;
    const std::uint64_t rows = via_peer.sample_stream(
        *owned_, 120, 77, [&](const std::string& part) { streamed += part; },
        /*chunk_rows=*/32);
    EXPECT_EQ(rows, 120U);
    EXPECT_EQ(streamed, expect);

    // VALIDATE forwards the same way (same seed, same draw, same rate).
    EXPECT_DOUBLE_EQ(via_peer.validate(*owned_, 150, 5), direct.validate(*owned_, 150, 5));

    // Errors relay as errors: an unknown model is unknown fleet-wide.
    EXPECT_THROW((void)via_peer.sample_csv("fleet-ghost-model", 10, 1), Error);
    direct.quit();
    via_peer.quit();
}

TEST_F(FleetTest, ReplicateAndFetchRoundTripByteIdentically) {
    auto owner = SynthClient::connect("127.0.0.1", servers_[0]->port());
    const std::string snapshot = owner.fetch(*owned_);
    owner.quit();
    ASSERT_FALSE(snapshot.empty());

    // Push the snapshot to node 2 under a new name; it verifies the
    // checksum, registers the model, and serves it locally from then on.
    auto peer = SynthClient::connect("127.0.0.1", servers_[2]->port());
    peer.replicate("fleet-replica-copy", snapshot);
    EXPECT_NE(servers_[2]->registry().get("fleet-replica-copy"), nullptr);
    EXPECT_EQ(peer.fetch("fleet-replica-copy"), snapshot)
        << "replicated model re-serializes differently";

    // A corrupted container is rejected whole — nothing registers.
    std::string corrupt = snapshot;
    corrupt[corrupt.size() / 2] = static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x40);
    EXPECT_THROW(peer.replicate("fleet-corrupt", corrupt), Error);
    EXPECT_EQ(servers_[2]->registry().get("fleet-corrupt"), nullptr);
    peer.quit();
}

TEST_F(FleetTest, FedtrainPublishesTheModelToEveryPeer) {
    auto client = SynthClient::connect("127.0.0.1", servers_[2]->port());
    TrainSpec spec;
    spec.records = 300;
    spec.sim_seed = 13;
    spec.epochs = 2;
    spec.gan_seed = 3;
    const std::uint64_t job = client.fedtrain_async("fleet-fed", spec);
    const auto info = client.wait_for_job(job);  // long-polls POLL wait=1
    ASSERT_EQ(info.at("state"), "done")
        << (info.count("error") != 0 ? info.at("error") : std::string{});
    client.quit();

    // The snapshot landed everywhere, and every node serves identical
    // bytes for the same seed — locally, no forwarding involved.
    std::string expect;
    for (auto* server : servers_) {
        ASSERT_NE(server->registry().get("fleet-fed"), nullptr);
        auto c = SynthClient::connect("127.0.0.1", server->port());
        const std::string csv_text = c.sample_csv("fleet-fed", 60, 9);
        if (expect.empty()) {
            expect = csv_text;
        }
        EXPECT_EQ(csv_text, expect);
        c.quit();
    }
    EXPECT_GE(servers_[2]->cluster()->replications_out.load(), 2U);
}

TEST_F(FleetTest, AsyncTrainOnANonOwnerRunsAsALocalProxyJob) {
    // A name some *other* node owns, submitted here, must proxy.
    std::string name;
    for (int i = 0; i < 4096 && name.empty(); ++i) {
        const std::string candidate = "fleet-proxy-" + std::to_string(i);
        if (!servers_[1]->cluster()->owns(candidate)) {
            name = candidate;
        }
    }
    ASSERT_FALSE(name.empty());
    auto client = SynthClient::connect("127.0.0.1", servers_[1]->port());
    TrainSpec spec;
    spec.records = 300;
    spec.sim_seed = 17;
    spec.epochs = 2;
    spec.gan_seed = 4;
    const std::uint64_t job = client.train_async(name, spec);
    // The job id is pollable *here*, on the submitting node, even though
    // the fit runs on the owner.
    const auto info = client.wait_for_job(job);
    EXPECT_EQ(info.at("state"), "done");
    const std::string& trained_owner = servers_[1]->cluster()->owner_of(name);
    for (std::size_t i = 0; i < 3; ++i) {
        if (servers_[i]->cluster()->self_name() == trained_owner) {
            EXPECT_NE(servers_[i]->registry().get(name), nullptr)
                << "owner never registered the proxied fit";
        }
    }
    // The submitting node never fitted it locally — the job was a proxy.
    EXPECT_EQ(servers_[1]->registry().get(name), nullptr);
    // And the model is reachable fleet-wide through routing.
    EXPECT_EQ(csv::parse(client.sample_csv(name, 20, 2)).rows.size(), 20U);
    client.quit();
}

TEST_F(FleetTest, StatsCarriesTheClusterSection) {
    // Each ctest case runs in its own process, so this fixture may be fresh:
    // generate the peer RPC traffic the latency lines require ourselves.
    servers_[1]->cluster()->probe_now();
    auto client = SynthClient::connect("127.0.0.1", servers_[1]->port());
    Request stats;
    stats.op = Op::stats;
    const std::string payload = client.rpc(stats).payload;
    EXPECT_NE(payload.find("peers=2"), std::string::npos) << payload;
    EXPECT_NE(payload.find("peers_up=2"), std::string::npos) << payload;
    EXPECT_NE(payload.find("forwards="), std::string::npos) << payload;
    EXPECT_NE(payload.find("forward_errors="), std::string::npos) << payload;
    EXPECT_NE(payload.find("replications="), std::string::npos) << payload;
    // Per-peer latency appears once the peer has served at least one RPC.
    EXPECT_NE(payload.find(".rpc_p99_us="), std::string::npos) << payload;
    client.quit();
}

// Failover gets its own fleet: killing a shared-fixture member would poison
// the tests above.
TEST(FleetFailover, DeadOwnerFailsOverToTheReplicaAndComesBack) {
    std::vector<SynthServer*> servers;
    std::vector<PeerAddress> addrs;
    for (std::size_t i = 0; i < 3; ++i) {
        ServerOptions options;
        auto* s = new SynthServer(options);
        s->start();
        servers.push_back(s);
        addrs.push_back(PeerAddress{"127.0.0.1", s->port()});
    }
    for (std::size_t i = 0; i < 3; ++i) {
        servers[i]->enable_cluster(fleet_config(addrs, i));
    }

    // Train on node 0's slot and publish everywhere (FEDTRAIN handles both).
    std::string name;
    for (int i = 0; i < 4096 && name.empty(); ++i) {
        const std::string candidate = "failover-" + std::to_string(i);
        if (servers[0]->cluster()->owns(candidate)) {
            name = candidate;
        }
    }
    ASSERT_FALSE(name.empty());
    {
        auto seed_client = SynthClient::connect("127.0.0.1", servers[0]->port());
        TrainSpec spec;
        spec.records = 300;
        spec.sim_seed = 23;
        spec.epochs = 2;
        spec.gan_seed = 5;
        const std::uint64_t job = seed_client.fedtrain_async(name, spec);
        ASSERT_EQ(seed_client.wait_for_job(job).at("state"), "done");
        seed_client.quit();
    }
    auto survivor = SynthClient::connect("127.0.0.1", servers[1]->port());
    const std::string expect = survivor.sample_csv(name, 80, 42);

    // Kill the owner abruptly. A probe round marks it down on the others.
    servers[0]->stop();
    servers[1]->cluster()->probe_now();
    servers[2]->cluster()->probe_now();
    EXPECT_FALSE(servers[1]->cluster()->peer_up(servers[0]->cluster()->self_name()));

    // The survivors keep serving the model — identical bytes, from their
    // published replicas — and report the death on the health surface.
    EXPECT_EQ(survivor.sample_csv(name, 80, 42), expect);
    EXPECT_EQ(survivor.cluster().at("members_up"), "2");
    auto other = SynthClient::connect("127.0.0.1", servers[2]->port());
    EXPECT_EQ(other.sample_csv(name, 80, 42), expect);
    other.quit();
    survivor.quit();
    for (auto* s : servers) {
        delete s;
    }
}

/// Binds an ephemeral port, releases it, and returns the number — a port a
/// restarted server can plausibly rebind (SO_REUSEADDR covers TIME_WAIT).
std::uint16_t reserve_port() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    KINET_CHECK(fd >= 0, "socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    KINET_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                "bind() failed");
    socklen_t len = sizeof(addr);
    KINET_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
                "getsockname() failed");
    ::close(fd);
    return ntohs(addr.sin_port);
}

// ---------------------------------------------------------------- membership

TEST(Membership, ViewSerializeParseRoundTrips) {
    MemberView view;
    view.epoch = 7;
    view.members = {
        Member{"10.0.0.1:9190", PeerAddress{"10.0.0.1", 9190}, MemberState::active},
        Member{"10.0.0.2:9190", PeerAddress{"10.0.0.2", 9190}, MemberState::joining},
        Member{"10.0.0.3:9190", PeerAddress{"10.0.0.3", 9190}, MemberState::leaving},
        Member{"10.0.0.4:9190", PeerAddress{"10.0.0.4", 9190}, MemberState::down},
    };
    const MemberView parsed = MemberView::parse(view.serialize());
    EXPECT_EQ(parsed.epoch, 7U);
    ASSERT_EQ(parsed.members.size(), 4U);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(parsed.members[i].name, view.members[i].name);
        EXPECT_EQ(parsed.members[i].addr, view.members[i].addr);
        EXPECT_EQ(parsed.members[i].state, view.members[i].state);
    }
    // Ring membership is joining+active only: leaving/down members keep
    // answering RPCs but own nothing, so marking a member leaving is what
    // moves its snapshots.
    EXPECT_EQ(parsed.ring_nodes(),
              (std::vector<std::string>{"10.0.0.1:9190", "10.0.0.2:9190"}));
    // Unknown trailing lines (the EPOCH payload appends ring parameters)
    // must not break parsing.
    const MemberView tolerant =
        MemberView::parse(view.serialize() + "virtual_nodes=64\nreplicas=2\n");
    EXPECT_EQ(tolerant.epoch, 7U);
    EXPECT_EQ(tolerant.members.size(), 4U);
    EXPECT_THROW((void)MemberView::parse("members=0\n"), Error);  // no epoch line
}

TEST(Membership, TableBumpsAreMonotonicAndAdoptIsStrictlyNewerWins) {
    MemberView initial;
    initial.epoch = 1;
    initial.members = {Member{"a:1", PeerAddress{"a", 1}, MemberState::active}};
    MembershipTable table(initial);
    EXPECT_EQ(table.epoch(), 1U);

    // join: new member bumps; the identical re-join is idempotent.
    EXPECT_EQ(table.join("b:2", PeerAddress{"b", 2}).epoch, 2U);
    EXPECT_EQ(table.join("b:2", PeerAddress{"b", 2}).epoch, 2U);
    EXPECT_EQ(table.view().find("b:2")->state, MemberState::joining);

    // set_state: bumps only on change.
    EXPECT_EQ(table.set_state("b:2", MemberState::active).epoch, 3U);
    EXPECT_EQ(table.set_state("b:2", MemberState::active).epoch, 3U);

    // A re-join of a leaving member re-admits it (bump back to joining).
    EXPECT_EQ(table.set_state("b:2", MemberState::leaving).epoch, 4U);
    EXPECT_EQ(table.join("b:2", PeerAddress{"b", 2}).epoch, 5U);
    EXPECT_EQ(table.view().find("b:2")->state, MemberState::joining);

    // remove: bumps when present, not when absent.
    EXPECT_EQ(table.remove("b:2").epoch, 6U);
    EXPECT_EQ(table.remove("b:2").epoch, 6U);

    // adopt: strictly newer replaces wholesale; same-or-older is refused.
    MemberView newer;
    newer.epoch = 9;
    newer.members = {Member{"c:3", PeerAddress{"c", 3}, MemberState::active}};
    EXPECT_TRUE(table.adopt(newer));
    EXPECT_EQ(table.epoch(), 9U);
    EXPECT_FALSE(table.adopt(newer));
    MemberView older = newer;
    older.epoch = 4;
    EXPECT_FALSE(table.adopt(older));
    EXPECT_EQ(table.view().find("c:3")->name, "c:3");
}

TEST(Breaker, RecordSuccessReportsTheCloseTransitionOnce) {
    BreakerOptions options;
    options.failure_threshold = 1;
    options.open_ms = 10;
    CircuitBreaker breaker(options, 1);
    // Healthy traffic: no transition to report.
    EXPECT_FALSE(breaker.record_success());
    breaker.record_failure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::open);
    // The success that closes an open circuit is the recovery edge —
    // reported exactly once, then quiet again.
    EXPECT_TRUE(breaker.record_success());
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::closed);
    EXPECT_FALSE(breaker.record_success());
    // A disabled breaker never reports an edge.
    CircuitBreaker disabled(BreakerOptions{0, 10, 2.0, 100, 0.0}, 1);
    disabled.record_failure();
    EXPECT_FALSE(disabled.record_success());
}

// ------------------------------------------------------- dynamic membership

/// fleet_config with timers effectively off: tests drive probes and
/// dissemination explicitly, so nothing converges behind the test's back.
ClusterConfig quiet_fleet_config(const std::vector<PeerAddress>& addrs,
                                 std::size_t self_index) {
    ClusterConfig cfg = fleet_config(addrs, self_index);
    cfg.probe_interval_ms = 3600000;
    cfg.anti_entropy_interval_ms = 0;
    return cfg;
}

TEST(DynamicMembership, FourthMemberJoinsPullsItsSnapshotsAndServes) {
    // Three running members; the fourth's port is reserved up front so the
    // post-join ring is computable before the join happens.
    std::vector<SynthServer*> servers;
    std::vector<PeerAddress> addrs;
    for (std::size_t i = 0; i < 3; ++i) {
        auto* s = new SynthServer(ServerOptions{});
        s->start();
        servers.push_back(s);
        addrs.push_back(PeerAddress{"127.0.0.1", s->port()});
    }
    for (std::size_t i = 0; i < 3; ++i) {
        servers[i]->enable_cluster(quiet_fleet_config(addrs, i));
    }
    const PeerAddress joiner_addr{"127.0.0.1", reserve_port()};

    // A model the *new* ring will place on the joiner, owned by somebody
    // else today — the join must move it.
    std::vector<std::string> new_nodes;
    for (const auto& addr : addrs) {
        new_nodes.push_back(addr.name());
    }
    new_nodes.push_back(joiner_addr.name());
    const HashRing new_ring(new_nodes, ClusterConfig{}.virtual_nodes);
    std::string moved;
    for (int i = 0; i < 4096 && moved.empty(); ++i) {
        const std::string candidate = "join-moved-" + std::to_string(i);
        if (new_ring.owner_of(candidate) == joiner_addr.name()) {
            moved = candidate;
        }
    }
    ASSERT_FALSE(moved.empty());
    const std::string old_owner = servers[0]->cluster()->owner_of(moved);
    for (std::size_t i = 0; i < 3; ++i) {
        if (servers[i]->cluster()->self_name() == old_owner) {
            const Response r = servers[i]->handle(parse_request(
                "TRAIN " + moved + " records=400 sim-seed=11 epochs=2 gan-seed=1"));
            ASSERT_TRUE(r.ok) << r.error;
        }
    }
    auto owner_client = SynthClient::connect("127.0.0.1", servers[0]->port());
    const std::string golden = owner_client.sample_csv(moved, 64, 99);
    owner_client.quit();

    // A ring-aware client built against the 3-member view, used before and
    // after the join — the epoch bump must reroute it, not break it.
    RingClient ring_client({addrs[0]});
    EXPECT_EQ(ring_client.sample_csv(moved, 64, 99), golden);
    const std::uint64_t client_epoch_before = ring_client.epoch();

    // Join.  join_fleet announces via the seed, adopts the fleet view,
    // pulls what the rebalanced ring places on the joiner (the `moved`
    // snapshot), and only then goes active.
    ServerOptions joiner_options;
    joiner_options.port = joiner_addr.port;
    SynthServer joiner(joiner_options);
    joiner.start();
    ClusterConfig tuning = quiet_fleet_config({joiner_addr}, 0);
    joiner.join_fleet(tuning, addrs[0]);

    const auto jc = joiner.cluster();
    ASSERT_NE(jc, nullptr);
    EXPECT_EQ(jc->view().find(jc->self_name())->state, MemberState::active);
    EXPECT_EQ(jc->view().members.size(), 4U);
    EXPECT_NE(joiner.registry().get(moved), nullptr)
        << "join did not pull the snapshot the new ring places on the joiner";
    EXPECT_GE(jc->handoff_snapshots.load(), 1U);

    // Deterministic dissemination: the seed learned at JOIN time; everyone
    // else learns through explicit probe rounds (pong carries the newer
    // epoch; the prober pulls the view).  probe_now() adopts inline.
    for (int round = 0; round < 3; ++round) {
        for (auto* s : servers) {
            s->cluster()->probe_now();
        }
    }
    const std::uint64_t epoch = jc->epoch();
    for (auto* s : servers) {
        EXPECT_EQ(s->cluster()->epoch(), epoch) << s->cluster()->self_name();
        EXPECT_EQ(s->cluster()->view().members.size(), 4U);
        EXPECT_EQ(s->cluster()->owner_of(moved), jc->self_name());
    }
    EXPECT_GT(epoch, client_epoch_before);

    // The new owner serves the moved model byte-identically — directly and
    // through the ring client, whose stale epoch stamp is answered with the
    // retryable wrong_owner rejection, absorbed by a refresh + re-route.
    auto direct = SynthClient::connect("127.0.0.1", joiner.port());
    EXPECT_EQ(direct.sample_csv(moved, 64, 99), golden);
    direct.quit();
    EXPECT_EQ(ring_client.sample_csv(moved, 64, 99), golden);
    EXPECT_GE(ring_client.reroutes(), 1U);
    EXPECT_EQ(ring_client.epoch(), epoch);
    EXPECT_EQ(ring_client.owner_of(moved), jc->self_name());

    // wrong_owner is a *retryable* coded error — a plain client's retry
    // machinery treats it like queue_full/draining.
    EXPECT_TRUE(is_retryable_error("wrong_owner: epoch=9 owner=x"));

    // LEAVE: the joiner drains out again.  The handoff pushes `moved` back
    // into the surviving ring before the member departs.
    {
        auto admin = SynthClient::connect("127.0.0.1", joiner.port());
        Request leave;
        leave.op = Op::leave;
        leave.model = jc->self_name();
        const Response left = admin.call(leave);
        ASSERT_TRUE(left.ok) << left.error;
        const auto kv = parse_kv_payload(left.payload);
        EXPECT_EQ(kv.at("draining"), "1");
        EXPECT_GT(parse_u64(kv.at("epoch"), "leave epoch"), epoch);
    }
    for (int round = 0; round < 3; ++round) {
        for (auto* s : servers) {
            s->cluster()->probe_now();
        }
    }
    for (auto* s : servers) {
        EXPECT_EQ(s->cluster()->view().members.size(), 3U)
            << s->cluster()->self_name();
        EXPECT_NE(s->cluster()->owner_of(moved), jc->self_name());
    }
    auto survivor = SynthClient::connect("127.0.0.1", servers[1]->port());
    EXPECT_EQ(survivor.sample_csv(moved, 64, 99), golden)
        << "leave handoff lost the snapshot";
    survivor.quit();

    joiner.stop();
    for (auto* s : servers) {
        delete s;
    }
}

TEST(FleetRepair, BreakerRecoveryTriggersAnImmediateAntiEntropyRound) {
    // Two members; `a` sits on a reserved port so it can restart in place.
    ServerOptions a_options;
    a_options.port = reserve_port();
    SynthServer a(a_options);
    a.start();
    SynthServer b{ServerOptions{}};
    b.start();
    const std::vector<PeerAddress> addrs = {
        PeerAddress{"127.0.0.1", a.port()},
        PeerAddress{"127.0.0.1", b.port()},
    };
    auto cfg_for = [&addrs](std::size_t i) {
        ClusterConfig cfg = fleet_config(addrs, i);
        // Timers parked, but anti-entropy *enabled* — the recovery wake is
        // only honoured when the operator runs with repair on.
        cfg.probe_interval_ms = 3600000;
        cfg.anti_entropy_interval_ms = 3600000;
        cfg.breaker.failure_threshold = 1;
        return cfg;
    };
    a.enable_cluster(cfg_for(0));
    b.enable_cluster(cfg_for(1));

    // A model owned by `a`, trained only there.  With replicas=2 of 2
    // members, `b` is in its preference set, so any anti-entropy round on
    // `b` pulls it — the test is *when* that round happens.
    std::string model;
    for (int i = 0; i < 1024 && model.empty(); ++i) {
        const std::string candidate = "repair-" + std::to_string(i);
        if (a.cluster()->owner_of(candidate) == a.cluster()->self_name()) {
            model = candidate;
        }
    }
    ASSERT_FALSE(model.empty());
    const Response trained = a.handle(parse_request(
        "TRAIN " + model + " records=400 sim-seed=7 epochs=2 gan-seed=1"));
    ASSERT_TRUE(trained.ok) << trained.error;
    ASSERT_EQ(b.registry().get(model), nullptr);

    // Outage: one failed probe opens the breaker (threshold 1).
    a.stop();
    b.cluster()->probe_now();
    // Recovery: probes bypass the open breaker, so the first probe after
    // the restart succeeds and closes it — and that close edge must
    // schedule an immediate anti-entropy round on the prober thread,
    // without waiting out the (hour-long here) periodic interval.
    a.start();
    b.cluster()->probe_now();
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (b.registry().get(model) == nullptr &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_NE(b.registry().get(model), nullptr)
        << "breaker recovery did not trigger the repair round";
    const Response stats = b.handle(parse_request("STATS"));
    ASSERT_TRUE(stats.ok) << stats.error;
    const auto kv = parse_kv_payload(stats.payload);
    EXPECT_GE(parse_u64(kv.at("anti_entropy_rounds"), "anti_entropy_rounds"), 1U);
    a.stop();
    b.stop();
}

// ---------------------------------------------------------------- client

TEST(ClientReconnect, ResendsOnceOnAStaleConnectionAfterServerRestart) {
    ServerOptions options;
    options.port = reserve_port();
    SynthServer server(options);
    server.start();

    ClientOptions plain;
    plain.connect_timeout_ms = 2000;
    ClientOptions resilient = plain;
    resilient.reconnect_on_reset = true;
    auto sticky = SynthClient::connect("127.0.0.1", server.port(), plain);
    auto retrying = SynthClient::connect("127.0.0.1", server.port(), resilient);
    sticky.ping();
    retrying.ping();

    // Restart: both pooled connections are now dead sockets.
    server.stop();
    server.start();

    // Without the option the stale connection surfaces as a transport
    // error; with it, one transparent reconnect-and-resend succeeds.
    EXPECT_THROW(sticky.ping(), Error);
    EXPECT_NO_THROW(retrying.ping());
    retrying.quit();
    server.stop();
}

TEST(ClientLongPoll, WaitReturnsPromptlyOnCompletionAndOnTimeout) {
    SynthServer server;
    server.start();
    auto client = SynthClient::connect("127.0.0.1", server.port());

    TrainSpec slow;
    slow.records = 1000;
    slow.epochs = 500;  // far longer than the poll windows below
    const std::uint64_t job = client.train_async("longpoll-m", slow);

    // A bounded long-poll on a running job returns at its timeout with a
    // live snapshot, not an error — and not after the full fit.
    const auto t0 = std::chrono::steady_clock::now();
    const auto running = client.poll_job_wait(job, 200);
    const auto waited =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);
    EXPECT_TRUE(running.at("state") == "running" || running.at("state") == "queued");
    EXPECT_LT(waited.count(), 5000);

    // Completion (here: cancellation) wakes a parked long-poll promptly —
    // wait_for_job would spin for the whole fit otherwise.
    (void)client.cancel_job(job);
    EXPECT_EQ(client.wait_for_job(job).at("state"), "cancelled");

    // POLL wait=1 on an unknown job is still a clean error.
    EXPECT_THROW((void)client.poll_job_wait(99999, 100), Error);
    client.quit();
    server.stop();
}

}  // namespace
