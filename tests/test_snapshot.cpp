// Snapshot round-trip and corruption-rejection tests: a loaded model must be
// bit-identical in behaviour to the one that was saved, and damaged files
// must be rejected with clear errors before any model state is built.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/common/bytes.hpp"
#include "src/common/check.hpp"
#include "src/core/kinetgan.hpp"
#include "src/netsim/lab_simulator.hpp"
#include "src/service/snapshot.hpp"

namespace {

using kinet::core::KiNetGan;
using kinet::core::KiNetGanOptions;
using kinet::data::Table;

KiNetGanOptions tiny_options(std::uint64_t seed = 42) {
    KiNetGanOptions opts;
    opts.gan.epochs = 3;
    opts.gan.batch_size = 64;
    opts.gan.hidden_dim = 32;
    opts.gan.noise_dim = 16;
    opts.gan.seed = seed;
    opts.transformer.max_modes = 3;
    return opts;
}

Table small_lab(std::size_t rows = 500) {
    kinet::netsim::LabSimOptions opts;
    opts.records = rows;
    opts.seed = 3;
    return kinet::netsim::LabTrafficSimulator(opts).generate();
}

std::unique_ptr<KiNetGan> trained_model(std::uint64_t seed = 42) {
    const auto kg = kinet::kg::NetworkKg::build_lab();
    auto model = std::make_unique<KiNetGan>(
        kg.make_oracle(), kinet::netsim::lab_conditional_columns(), tiny_options(seed));
    model->fit(small_lab());
    return model;
}

bool tables_identical(const Table& a, const Table& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        return false;
    }
    return a.matrix() == b.matrix();
}

TEST(Snapshot, RoundTripSampleIsBitIdentical) {
    auto original = trained_model();
    const std::string blob = kinet::service::write_snapshot(*original);

    // The snapshot captures the live RNG stream: the loaded model's next
    // sample must equal what the original produces next.
    const Table expected = original->sample(257);  // non-multiple of batch
    auto loaded = kinet::service::read_snapshot(blob);
    const Table actual = loaded->sample(257);
    EXPECT_TRUE(tables_identical(expected, actual));

    // And they stay in lockstep on a second draw.
    EXPECT_TRUE(tables_identical(original->sample(64), loaded->sample(64)));
}

TEST(Snapshot, RoundTripPreservesSeededStreamsAndValidity) {
    auto original = trained_model(7);
    const std::string blob = kinet::service::write_snapshot(*original);
    auto loaded = kinet::service::read_snapshot(blob);

    const Table a = original->sample_seeded(200, 99);
    const Table b = loaded->sample_seeded(200, 99);
    EXPECT_TRUE(tables_identical(a, b));
    EXPECT_DOUBLE_EQ(original->kg_validity_rate(a), loaded->kg_validity_rate(b));

    // Different stream seeds give different rows (independent streams).
    EXPECT_FALSE(tables_identical(loaded->sample_seeded(200, 99),
                                  loaded->sample_seeded(200, 100)));
}

TEST(Snapshot, RoundTripPreservesReportAndOptions) {
    auto original = trained_model();
    auto loaded = kinet::service::read_snapshot(kinet::service::write_snapshot(*original));
    EXPECT_EQ(loaded->report().generator_loss.size(), original->report().generator_loss.size());
    EXPECT_EQ(loaded->options().gan.seed, original->options().gan.seed);
    EXPECT_EQ(loaded->schema().size(), original->schema().size());
    EXPECT_DOUBLE_EQ(loaded->last_cond_adherence(), original->last_cond_adherence());
}

TEST(Snapshot, ConditionalSamplingSurvivesRoundTrip) {
    auto original = trained_model();
    auto loaded = kinet::service::read_snapshot(kinet::service::write_snapshot(*original));
    const Table a = original->sample_conditional_seeded(120, "protocol", "TCP", 5);
    const Table b = loaded->sample_conditional_seeded(120, "protocol", "TCP", 5);
    EXPECT_TRUE(tables_identical(a, b));
    // Unknown columns/labels are rejected on both sides of the round trip.
    EXPECT_THROW((void)loaded->sample_conditional_seeded(10, "pkt_count", "TCP", 5),
                 kinet::Error);
    EXPECT_THROW((void)loaded->sample_conditional_seeded(10, "protocol", "NOPE", 5),
                 kinet::Error);
}

TEST(Snapshot, FileRoundTrip) {
    const std::string path = ::testing::TempDir() + "kinet_snapshot_test.snap";
    auto original = trained_model();
    kinet::service::save_snapshot_file(*original, path);
    auto loaded = kinet::service::load_snapshot_file(path);
    EXPECT_TRUE(tables_identical(original->sample(50), loaded->sample(50)));
    std::remove(path.c_str());
}

TEST(Snapshot, RejectsBadMagic) {
    auto model = trained_model();
    std::string blob = kinet::service::write_snapshot(*model);
    blob[0] = 'X';
    try {
        (void)kinet::service::read_snapshot(blob);
        FAIL() << "expected kinet::Error";
    } catch (const kinet::Error& e) {
        EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
    }
}

TEST(Snapshot, RejectsWrongVersion) {
    auto model = trained_model();
    std::string blob = kinet::service::write_snapshot(*model);
    blob[8] = static_cast<char>(kinet::service::kSnapshotVersion + 1);  // version u32 LSB
    try {
        (void)kinet::service::read_snapshot(blob);
        FAIL() << "expected kinet::Error";
    } catch (const kinet::Error& e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
}

TEST(Snapshot, RejectsTruncation) {
    auto model = trained_model();
    const std::string blob = kinet::service::write_snapshot(*model);
    // Sliced anywhere — inside the header or inside the payload — the reader
    // must throw, never return a half-built model.
    for (const double frac : {0.1, 0.5, 0.99}) {
        const auto cut = static_cast<std::size_t>(static_cast<double>(blob.size()) * frac);
        EXPECT_THROW((void)kinet::service::read_snapshot(blob.substr(0, cut)), kinet::Error)
            << "truncation at " << cut << " bytes was accepted";
    }
    EXPECT_THROW((void)kinet::service::read_snapshot(""), kinet::Error);
}

TEST(Snapshot, RejectsBitCorruption) {
    auto model = trained_model();
    std::string blob = kinet::service::write_snapshot(*model);
    // Flip one byte deep inside the payload (weights region).
    blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x40);
    try {
        (void)kinet::service::read_snapshot(blob);
        FAIL() << "expected kinet::Error";
    } catch (const kinet::Error& e) {
        EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
    }
}

TEST(Snapshot, RejectsTrailingGarbage) {
    auto model = trained_model();
    std::string blob = kinet::service::write_snapshot(*model);
    blob += "extra";
    EXPECT_THROW((void)kinet::service::read_snapshot(blob), kinet::Error);
}

TEST(Snapshot, MissingFileHasClearError) {
    try {
        (void)kinet::service::load_snapshot_file("/nonexistent/kinet.snap");
        FAIL() << "expected kinet::Error";
    } catch (const kinet::Error& e) {
        EXPECT_NE(std::string(e.what()).find("/nonexistent/kinet.snap"), std::string::npos);
    }
}

}  // namespace
