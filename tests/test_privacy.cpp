// Tests for the three privacy attacks.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/data/split.hpp"
#include "src/eval/privacy/attribute_inference.hpp"
#include "src/eval/privacy/membership_inference.hpp"
#include "src/eval/privacy/reidentification.hpp"
#include "src/netsim/lab_simulator.hpp"

namespace {

using kinet::Rng;
using namespace kinet::eval;  // NOLINT
using kinet::data::Table;

Table lab_table(std::size_t rows, std::uint64_t seed = 41) {
    kinet::netsim::LabSimOptions opts;
    opts.records = rows;
    opts.seed = seed;
    return kinet::netsim::LabTrafficSimulator(opts).generate();
}

std::vector<std::size_t> continuous_columns(const Table& t) {
    std::vector<std::size_t> cols;
    for (std::size_t c = 0; c < t.cols(); ++c) {
        if (!t.meta(c).is_categorical()) {
            cols.push_back(c);
        }
    }
    return cols;
}

TEST(Reidentification, MemorizingReleaseIsWorseThanIndependentRelease) {
    const Table original = lab_table(1200);
    // "Memorizing" release: the original rows themselves.
    // "Generalising" release: an independent draw from the same simulator.
    const Table independent = lab_table(1200, /*seed=*/99);

    ReidentificationOptions opts;
    opts.qi_columns = continuous_columns(original);
    opts.known_fraction = 0.3;
    opts.max_targets = 400;

    const double leaky = reidentification_attack(original, original, opts);
    const double safe = reidentification_attack(original, independent, opts);
    EXPECT_GT(leaky, safe);
    EXPECT_GT(leaky, 0.5);  // exact copies are trivially linkable
}

TEST(Reidentification, AccuracyGrowsWithKnownFraction) {
    const Table original = lab_table(800);
    const Table release = lab_table(800, /*seed=*/77);
    ReidentificationOptions opts;
    opts.qi_columns = continuous_columns(original);
    opts.max_targets = 400;

    opts.known_fraction = 0.3;
    const double p30 = reidentification_attack(original, release, opts);
    opts.known_fraction = 0.9;
    const double p90 = reidentification_attack(original, release, opts);
    EXPECT_GT(p90, p30);
    EXPECT_GT(p90, 0.8);  // floor ≈ known fraction
}

TEST(Reidentification, ValidatesOptions) {
    const Table t = lab_table(50);
    ReidentificationOptions opts;
    opts.qi_columns = {};
    EXPECT_THROW((void)reidentification_attack(t, t, opts), kinet::Error);
    opts.qi_columns = {6};
    opts.known_fraction = 1.5;
    EXPECT_THROW((void)reidentification_attack(t, t, opts), kinet::Error);
}

TEST(AttributeInference, CopiedReleaseLeaksSensitiveColumn) {
    const Table original = lab_table(1000);
    AttributeInferenceOptions opts;
    opts.qi_columns = continuous_columns(original);
    opts.sensitive_column = original.column_index("event_type");
    opts.max_targets = 400;

    // Against itself the QIs identify the event type strongly (numeric
    // profiles are event-specific).
    const double leaky = attribute_inference_attack(original, original, opts);
    EXPECT_GT(leaky, 0.5);

    // A label-shuffled release breaks the QI -> sensitive link.
    Table shuffled = original;
    Rng rng(5);
    const auto perm = rng.permutation(shuffled.rows());
    for (std::size_t r = 0; r < shuffled.rows(); ++r) {
        shuffled.set_value(r, opts.sensitive_column,
                           original.value(perm[r], opts.sensitive_column));
    }
    const double safe = attribute_inference_attack(original, shuffled, opts);
    EXPECT_LT(safe, leaky - 0.1);
}

TEST(AttributeInference, RejectsContinuousSensitiveColumn) {
    const Table t = lab_table(100);
    AttributeInferenceOptions opts;
    opts.qi_columns = {6};
    opts.sensitive_column = 7;  // continuous
    EXPECT_THROW((void)attribute_inference_attack(t, t, opts), kinet::Error);
}

TEST(ThresholdAttack, PerfectlySeparatedScoresGiveAccuracyOne) {
    const std::vector<double> members = {0.9, 0.8, 0.95};
    const std::vector<double> nonmembers = {0.1, 0.2, 0.05};
    EXPECT_DOUBLE_EQ(threshold_attack_accuracy(members, nonmembers), 1.0);
}

TEST(ThresholdAttack, IdenticalDistributionsStayNearChance) {
    Rng rng(6);
    std::vector<double> members(300);
    std::vector<double> nonmembers(300);
    for (auto& v : members) {
        v = rng.uniform();
    }
    for (auto& v : nonmembers) {
        v = rng.uniform();
    }
    const double acc = threshold_attack_accuracy(members, nonmembers);
    EXPECT_GE(acc, 0.5);  // by construction
    EXPECT_LT(acc, 0.62);  // only small-sample fluctuation above chance
}

TEST(MembershipInference, FbbDetectsMemorizedMembers) {
    const Table all = lab_table(1600);
    Rng rng(7);
    const auto split = kinet::data::train_test_split(all, 0.5, rng);
    // The release *is* the member set: maximal memorisation.
    FbbOptions opts;
    opts.feature_columns = continuous_columns(all);
    opts.max_candidates = 300;
    const double leaky =
        membership_inference_full_black_box(split.train, split.test, split.train, opts);
    EXPECT_GT(leaky, 0.9);

    // An independent release should be near chance.
    const Table independent = lab_table(800, /*seed=*/123);
    const double safe =
        membership_inference_full_black_box(split.train, split.test, independent, opts);
    EXPECT_LT(safe, 0.65);
}

TEST(MembershipInference, WhiteBoxUsesScoreSeparation) {
    // Members scored systematically higher by a leaky discriminator.
    Rng rng(8);
    std::vector<double> member_scores(200);
    std::vector<double> nonmember_scores(200);
    for (auto& v : member_scores) {
        v = rng.normal(0.7, 0.1);
    }
    for (auto& v : nonmember_scores) {
        v = rng.normal(0.45, 0.1);
    }
    EXPECT_GT(membership_inference_white_box(member_scores, nonmember_scores), 0.75);
}

TEST(MembershipInference, ValidatesInputs) {
    const Table t = lab_table(50);
    FbbOptions opts;  // empty feature columns
    EXPECT_THROW((void)membership_inference_full_black_box(t, t, t, opts), kinet::Error);
    const std::vector<double> empty;
    const std::vector<double> one = {0.5};
    EXPECT_THROW((void)threshold_attack_accuracy(empty, one), kinet::Error);
}

}  // namespace
