// Tests for the 1-D Gaussian mixture (mode-specific normalization substrate).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/check.hpp"
#include "src/data/gmm.hpp"

namespace {

using kinet::Rng;
using kinet::data::Gmm1D;

std::vector<float> bimodal_sample(std::size_t n, Rng& rng) {
    std::vector<float> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        v.push_back(static_cast<float>(rng.bernoulli(0.5) ? rng.normal(-5.0, 0.5)
                                                          : rng.normal(5.0, 0.5)));
    }
    return v;
}

TEST(Gmm, RecoversTwoWellSeparatedModes) {
    Rng rng(400);
    const auto values = bimodal_sample(3000, rng);
    const auto gmm = Gmm1D::fit(values, 5, rng);
    ASSERT_GE(gmm.component_count(), 2U);

    // Several components may share a mode; the total weight parked near each
    // of -5 and +5 must be roughly half, and no weight may sit in the gap.
    double near_lo = 0.0;
    double near_hi = 0.0;
    double in_gap = 0.0;
    for (const auto& c : gmm.components()) {
        if (std::abs(c.mean + 5.0) < 1.0) {
            near_lo += c.weight;
        } else if (std::abs(c.mean - 5.0) < 1.0) {
            near_hi += c.weight;
        } else {
            in_gap += c.weight;
        }
    }
    EXPECT_NEAR(near_lo, 0.5, 0.1);
    EXPECT_NEAR(near_hi, 0.5, 0.1);
    EXPECT_LT(in_gap, 0.05);
}

TEST(Gmm, WeightsSumToOne) {
    Rng rng(401);
    const auto values = bimodal_sample(1000, rng);
    const auto gmm = Gmm1D::fit(values, 4, rng);
    double total = 0.0;
    for (const auto& c : gmm.components()) {
        total += c.weight;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Gmm, ConstantColumnYieldsSingleTightComponent) {
    Rng rng(402);
    const std::vector<float> values(100, 7.5F);
    const auto gmm = Gmm1D::fit(values, 5, rng);
    ASSERT_EQ(gmm.component_count(), 1U);
    EXPECT_NEAR(gmm.component(0).mean, 7.5, 1e-6);
    EXPECT_LE(gmm.component(0).stddev, 1e-3);
}

TEST(Gmm, ResponsibilitiesNormalizedAndPeaked) {
    Rng rng(403);
    const auto values = bimodal_sample(2000, rng);
    const auto gmm = Gmm1D::fit(values, 3, rng);
    const auto resp = gmm.responsibilities(-5.0);
    double total = 0.0;
    for (double r : resp) {
        total += r;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    // A point at a mode should be confidently assigned.
    EXPECT_GT(resp[gmm.argmax_component(-5.0)], 0.9);
}

TEST(Gmm, SampleComponentFollowsPosterior) {
    Rng rng(404);
    const auto values = bimodal_sample(2000, rng);
    const auto gmm = Gmm1D::fit(values, 3, rng);
    // Sampled components must overwhelmingly sit at the queried mode (+5) —
    // several components may share that mode, so compare means, not indices.
    std::size_t at_mode = 0;
    for (int i = 0; i < 200; ++i) {
        const auto k = gmm.sample_component(5.0, rng);
        at_mode += (std::abs(gmm.component(k).mean - 5.0) < 1.0) ? 1 : 0;
    }
    EXPECT_GT(at_mode, 190U);
}

TEST(Gmm, LogLikelihoodHigherAtModesThanInGap) {
    Rng rng(405);
    const auto values = bimodal_sample(2000, rng);
    const auto gmm = Gmm1D::fit(values, 4, rng);
    EXPECT_GT(gmm.log_likelihood(-5.0), gmm.log_likelihood(0.0));
    EXPECT_GT(gmm.log_likelihood(5.0), gmm.log_likelihood(0.0));
}

TEST(Gmm, RejectsEmptyInput) {
    Rng rng(406);
    const std::vector<float> empty;
    EXPECT_THROW((void)Gmm1D::fit(empty, 3, rng), kinet::Error);
}

TEST(Gmm, HandlesFewerPointsThanComponents) {
    Rng rng(407);
    const std::vector<float> values = {1.0F, 2.0F};
    const auto gmm = Gmm1D::fit(values, 8, rng);
    EXPECT_GE(gmm.component_count(), 1U);
    EXPECT_LE(gmm.component_count(), 2U);
}

// Property sweep: pruning keeps the model valid across component budgets.
class GmmBudget : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GmmBudget, FitIsValidForAnyBudget) {
    Rng rng(408 + GetParam());
    const auto values = bimodal_sample(800, rng);
    const auto gmm = Gmm1D::fit(values, GetParam(), rng);
    EXPECT_GE(gmm.component_count(), 1U);
    EXPECT_LE(gmm.component_count(), GetParam());
    double total = 0.0;
    for (const auto& c : gmm.components()) {
        EXPECT_GT(c.stddev, 0.0);
        EXPECT_GE(c.weight, 0.0);
        total += c.weight;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_TRUE(std::isfinite(gmm.log_likelihood(0.0)));
}

INSTANTIATE_TEST_SUITE_P(Budgets, GmmBudget, ::testing::Values(1U, 2U, 3U, 5U, 8U));

}  // namespace
