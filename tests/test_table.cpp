// Tests for the typed Table and its CSV round-trip.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/data/table.hpp"

namespace {

using kinet::Error;
using kinet::data::ColumnMeta;
using kinet::data::Table;

std::vector<ColumnMeta> demo_schema() {
    return {
        ColumnMeta::categorical_column("proto", {"tcp", "udp"}),
        ColumnMeta::continuous_column("bytes"),
        ColumnMeta::categorical_column("label", {"benign", "attack"}),
    };
}

Table demo_table() {
    Table t(demo_schema());
    t.append_row({0.0F, 100.0F, 0.0F});
    t.append_row({1.0F, 250.0F, 0.0F});
    t.append_row({0.0F, 9000.0F, 1.0F});
    return t;
}

TEST(ColumnMeta, CategoryLookup) {
    const auto meta = ColumnMeta::categorical_column("c", {"a", "b"});
    EXPECT_EQ(meta.category_id("b"), 1U);
    EXPECT_FALSE(meta.find_category("z").has_value());
    EXPECT_THROW((void)meta.category_id("z"), Error);
    EXPECT_THROW((void)ColumnMeta::categorical_column("c", {}), Error);
}

TEST(Table, AppendValidatesWidthAndCategories) {
    Table t(demo_schema());
    EXPECT_THROW(t.append_row({0.0F, 1.0F}), Error);            // too narrow
    EXPECT_THROW(t.append_row({5.0F, 1.0F, 0.0F}), Error);      // bad category
    EXPECT_THROW(t.append_row({0.0F, NAN, 0.0F}), Error);       // non-finite
    t.append_row({1.0F, 3.0F, 1.0F});
    EXPECT_EQ(t.rows(), 1U);
}

TEST(Table, AccessorsAndLabels) {
    const Table t = demo_table();
    EXPECT_EQ(t.rows(), 3U);
    EXPECT_EQ(t.cols(), 3U);
    EXPECT_EQ(t.column_index("bytes"), 1U);
    EXPECT_THROW((void)t.column_index("nope"), Error);
    EXPECT_EQ(t.category_at(1, 0), 1U);
    EXPECT_EQ(t.label_at(2, 2), "attack");
    EXPECT_THROW((void)t.category_at(0, 1), Error);  // continuous column
}

TEST(Table, SelectRowsPreservesSchemaAndOrder) {
    const Table t = demo_table();
    const Table s = t.select_rows({2, 0});
    EXPECT_EQ(s.rows(), 2U);
    EXPECT_FLOAT_EQ(s.value(0, 1), 9000.0F);
    EXPECT_FLOAT_EQ(s.value(1, 1), 100.0F);
    EXPECT_EQ(s.schema()[0].name, "proto");
}

TEST(Table, CategoryCounts) {
    const Table t = demo_table();
    const auto counts = t.category_counts(0);
    ASSERT_EQ(counts.size(), 2U);
    EXPECT_EQ(counts[0], 2U);  // tcp
    EXPECT_EQ(counts[1], 1U);  // udp
    EXPECT_THROW((void)t.category_counts(1), Error);
}

TEST(Table, AppendRowsChecksSchema) {
    Table a = demo_table();
    const Table b = demo_table();
    a.append_rows(b);
    EXPECT_EQ(a.rows(), 6U);
    Table wrong(std::vector<ColumnMeta>{ColumnMeta::continuous_column("x")});
    EXPECT_THROW(a.append_rows(wrong), Error);
}

TEST(Table, CsvRoundTrip) {
    const Table t = demo_table();
    const auto doc = t.to_csv();
    EXPECT_EQ(doc.header[0], "proto");
    EXPECT_EQ(doc.rows[0][0], "tcp");
    const Table back = Table::from_csv(doc, demo_schema());
    ASSERT_EQ(back.rows(), t.rows());
    for (std::size_t r = 0; r < t.rows(); ++r) {
        EXPECT_EQ(back.category_at(r, 0), t.category_at(r, 0));
        EXPECT_NEAR(back.value(r, 1), t.value(r, 1), 1e-3F);
        EXPECT_EQ(back.category_at(r, 2), t.category_at(r, 2));
    }
}

TEST(Table, SetValueValidatesCategoricalRange) {
    Table t = demo_table();
    t.set_value(0, 0, 1.0F);
    EXPECT_EQ(t.category_at(0, 0), 1U);
    EXPECT_THROW(t.set_value(0, 0, 9.0F), Error);
    EXPECT_THROW(t.set_value(9, 0, 0.0F), Error);
}

}  // namespace
