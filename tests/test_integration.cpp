// End-to-end integration: simulate -> fit KiNETGAN -> sample -> evaluate
// fidelity, utility and privacy, exactly as the benchmark harness does
// (scaled down for CI).
#include <gtest/gtest.h>

#include "src/core/kinetgan.hpp"
#include "src/data/split.hpp"
#include "src/eval/metrics.hpp"
#include "src/eval/privacy/membership_inference.hpp"
#include "src/eval/tstr.hpp"
#include "src/netsim/lab_simulator.hpp"
#include "src/netsim/unsw_synthesizer.hpp"

namespace {

using kinet::data::Table;

TEST(Integration, LabPipelineEndToEnd) {
    // 1. Simulate the lab capture.
    kinet::netsim::LabSimOptions sim_opts;
    sim_opts.records = 1800;
    sim_opts.seed = 51;
    const Table data = kinet::netsim::LabTrafficSimulator(sim_opts).generate();

    kinet::Rng rng(1);
    const auto split = kinet::data::train_test_split(data, 0.3, rng,
                                                     kinet::netsim::lab_label_column());

    // 2. Train KiNETGAN on the training side.
    kinet::core::KiNetGanOptions opts;
    opts.gan.epochs = 30;
    opts.gan.hidden_dim = 64;
    opts.gan.batch_size = 128;
    opts.gan.seed = 2;
    opts.transformer.max_modes = 3;
    const auto kg = kinet::kg::NetworkKg::build_lab();
    kinet::core::KiNetGan model(kg.make_oracle(), kinet::netsim::lab_conditional_columns(), opts);
    model.fit(split.train);

    // 3. Sample a synthetic release of matching size.
    const Table synth = model.sample(split.train.rows());
    ASSERT_EQ(synth.rows(), split.train.rows());

    // 4. Fidelity: synthetic is much closer to real than a degenerate
    //    single-event release would be.
    const double emd = kinet::eval::mean_emd(split.test, synth);
    EXPECT_LT(emd, 0.35);

    // 5. Utility: TSTR clearly beats random guessing (5 classes, majority
    //    ~90% benign, so require > 0.5 as a meaningful floor).
    const auto tstr = kinet::eval::evaluate_tstr(synth, split.test,
                                                 kinet::netsim::lab_label_column());
    EXPECT_GT(kinet::eval::average_accuracy(tstr), 0.5);

    // 6. KG validity of the synthetic attribute combinations is high.
    EXPECT_GT(model.kg_validity_rate(synth), 0.5);

    // 7. Privacy: FBB membership inference should stay well below the
    //    memorisation ceiling of 1.0.
    std::vector<std::size_t> cont_cols = {6, 7, 8, 9};
    kinet::eval::FbbOptions fbb;
    fbb.feature_columns = cont_cols;
    fbb.max_candidates = 250;
    const double mia = kinet::eval::membership_inference_full_black_box(
        split.train, split.test, synth, fbb);
    EXPECT_LT(mia, 0.8);
}

TEST(Integration, UnswPipelineSmoke) {
    kinet::netsim::UnswOptions sim_opts;
    sim_opts.records = 1500;
    sim_opts.seed = 52;
    const Table data = kinet::netsim::UnswNb15Synthesizer(sim_opts).generate();

    kinet::Rng rng(3);
    const auto split = kinet::data::train_test_split(data, 0.3, rng,
                                                     kinet::netsim::unsw_label_column());

    kinet::core::KiNetGanOptions opts;
    opts.gan.epochs = 15;
    opts.gan.hidden_dim = 64;
    opts.gan.seed = 4;
    opts.transformer.max_modes = 3;
    const auto kg = kinet::kg::NetworkKg::build_unsw();
    kinet::core::KiNetGan model(kg.make_oracle(), kinet::netsim::unsw_conditional_columns(),
                                opts);
    model.fit(split.train);
    const Table synth = model.sample(800);

    EXPECT_EQ(synth.cols(), data.cols());
    EXPECT_LT(kinet::eval::mean_emd(split.test, synth), 0.5);
    const auto tstr = kinet::eval::evaluate_tstr(synth, split.test,
                                                 kinet::netsim::unsw_label_column());
    EXPECT_EQ(tstr.size(), 6U);
}

}  // namespace
