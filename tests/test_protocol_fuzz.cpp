// Protocol fuzz/property tests — parse_request is the daemon's attack
// surface (every byte comes straight off an untrusted TCP connection).
// Deterministic pseudo-random fuzzing: random byte soup, structured token
// soup, and mutations of valid request lines must never crash or throw
// anything but kinet::Error; valid requests must round-trip through
// format_request unchanged.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"
#include "src/service/protocol.hpp"

namespace {

using namespace kinet;           // NOLINT
using namespace kinet::service;  // NOLINT

/// Feeds one line to the parser and the typed kv helpers; anything other
/// than a clean parse or a kinet::Error is a defect (the test crashes or
/// the unexpected exception propagates and fails the suite).
void expect_no_crash(const std::string& line) {
    try {
        const Request request = parse_request(line);
        // Exercise the helpers the server calls on arbitrary requests.
        for (const auto& [key, value] : request.kv) {
            try {
                (void)kv_u64(request, key, 0);
            } catch (const Error&) {
            }
            try {
                (void)kv_double(request, key, 0.0);
            } catch (const Error&) {
            }
            (void)kv_string(request, key, "");
        }
        // A parsed request always formats, and the reformatted line parses
        // back to the same request (format/parse is a closure).  One known
        // degenerate exception: "STATS a=b x" parses with an empty model and
        // positional ["x"], but the formatted line "STATS x a=b" promotes
        // "x" to the optional model slot.
        const bool degenerate_stats =
            request.op == Op::stats && request.model.empty() && !request.positional.empty();
        if (!degenerate_stats) {
            const Request reparsed = parse_request(format_request(request));
            EXPECT_EQ(reparsed.op, request.op) << line;
            EXPECT_EQ(reparsed.model, request.model) << line;
            EXPECT_EQ(reparsed.positional, request.positional) << line;
            EXPECT_EQ(reparsed.kv, request.kv) << line;
        }
    } catch (const Error&) {
        // Rejecting with a protocol error is the correct failure mode.
    }
}

TEST(ProtocolFuzz, RandomByteSoupNeverCrashes) {
    Rng rng(0xf02201);
    for (int iter = 0; iter < 4000; ++iter) {
        const auto length = static_cast<std::size_t>(rng.randint(0, 80));
        std::string line;
        line.reserve(length);
        for (std::size_t i = 0; i < length; ++i) {
            // Any byte except LF (the transport strips line framing).
            char c = static_cast<char>(rng.randint(0, 255));
            if (c == '\n') {
                c = ' ';
            }
            line.push_back(c);
        }
        expect_no_crash(line);
    }
}

TEST(ProtocolFuzz, RandomTokenSoupNeverCrashes) {
    // Structured soup biased toward the grammar: real op names, '=' signs,
    // numbers — reaches deeper into the parser than raw bytes do.
    const std::vector<std::string> pieces = {
        "TRAIN", "SAMPLE",  "POLL",   "JOBS",   "train", "m",     "site-0", "=",
        "==",    "seed=",   "=5",     "a=b",    "17",    "-1",    "nan",
        "inf",   "1e999",   "0x10",   "..",     "/etc",  "cond=", ":",      "",
        "async=1", "epochs=0", "split-frac=2", "attack=nan", "18446744073709551616",
    };
    Rng rng(0xf02202);
    for (int iter = 0; iter < 4000; ++iter) {
        const auto tokens = static_cast<std::size_t>(rng.randint(0, 8));
        std::string line;
        for (std::size_t t = 0; t < tokens; ++t) {
            if (t > 0) {
                line += rng.bernoulli(0.2) ? "  " : " ";
            }
            line += pieces[static_cast<std::size_t>(
                rng.randint(0, static_cast<std::int64_t>(pieces.size()) - 1))];
        }
        expect_no_crash(line);
    }
}

TEST(ProtocolFuzz, MutatedValidLinesNeverCrash) {
    const std::vector<std::string> corpus = {
        "PING",
        "TRAIN site-0 records=2000 sim-seed=7 attack=1.0 split-frac=0.3 epochs=30",
        "TRAIN site-1 domain=unsw source=csv:captures/day1.csv async=1",
        "SAMPLE site-0 500 seed=17 cond=protocol:TCP",
        "VALIDATE site-0 n=1000 seed=5",
        "LOAD site-0 snap/model.snap",
        "SAVE site-0 model.snap",
        "STATS site-0",
        "POLL 17",
        "CANCEL 3",
        "JOBS",
        "DROP site-0",
        "QUIT",
    };
    Rng rng(0xf02203);
    for (int iter = 0; iter < 6000; ++iter) {
        std::string line = corpus[static_cast<std::size_t>(
            rng.randint(0, static_cast<std::int64_t>(corpus.size()) - 1))];
        const int mutations = static_cast<int>(rng.randint(1, 4));
        for (int m = 0; m < mutations && !line.empty(); ++m) {
            const auto pos =
                static_cast<std::size_t>(rng.randint(0, static_cast<std::int64_t>(line.size()) - 1));
            switch (rng.randint(0, 3)) {
            case 0:  // flip a byte
                line[pos] = static_cast<char>(rng.randint(1, 255));
                break;
            case 1:  // delete a byte
                line.erase(pos, 1);
                break;
            case 2:  // duplicate a span
                line.insert(pos, line.substr(pos, static_cast<std::size_t>(rng.randint(1, 8))));
                break;
            default:  // inject a structural character
                line.insert(pos, 1, " =:."[rng.randint(0, 3)]);
                break;
            }
        }
        for (char& c : line) {
            if (c == '\n') {
                c = ' ';
            }
        }
        expect_no_crash(line);
    }
}

TEST(ProtocolFuzz, RandomValidRequestsRoundTrip) {
    // Property: format_request ∘ parse_request is the identity on valid
    // requests built from clean tokens.
    const Op ops_with_model[] = {Op::train, Op::load, Op::save, Op::drop, Op::sample,
                                 Op::validate};
    Rng rng(0xf02204);
    for (int iter = 0; iter < 2000; ++iter) {
        Request request;
        request.op = ops_with_model[static_cast<std::size_t>(rng.randint(0, 5))];
        request.model = "model-" + std::to_string(rng.randint(0, 99));
        const std::size_t positional =
            (request.op == Op::load || request.op == Op::save || request.op == Op::sample)
                ? 1
                : static_cast<std::size_t>(rng.randint(0, 2));
        for (std::size_t p = 0; p < positional; ++p) {
            request.positional.push_back(std::to_string(rng.randint(0, 100000)));
        }
        const auto kvs = static_cast<std::size_t>(rng.randint(0, 4));
        for (std::size_t k = 0; k < kvs; ++k) {
            request.kv["k" + std::to_string(rng.randint(0, 9))] =
                "v" + std::to_string(rng.randint(0, 999));
        }
        const Request reparsed = parse_request(format_request(request));
        ASSERT_EQ(reparsed.op, request.op);
        ASSERT_EQ(reparsed.model, request.model);
        ASSERT_EQ(reparsed.positional, request.positional);
        ASSERT_EQ(reparsed.kv, request.kv);
    }
}

TEST(ProtocolFuzz, ResponseFramingIsAlwaysWellFormed) {
    Rng rng(0xf02205);
    for (int iter = 0; iter < 2000; ++iter) {
        Response response;
        response.ok = rng.bernoulli(0.5);
        const auto length = static_cast<std::size_t>(rng.randint(0, 64));
        std::string blob;
        for (std::size_t i = 0; i < length; ++i) {
            blob.push_back(static_cast<char>(rng.randint(0, 255)));
        }
        if (response.ok) {
            response.payload = blob;
            const std::string frame = format_response(response);
            // "OK <len>\n" followed by exactly the payload bytes.
            ASSERT_EQ(frame.rfind("OK ", 0), 0U);
            const std::size_t nl = frame.find('\n');
            ASSERT_NE(nl, std::string::npos);
            ASSERT_EQ(std::stoull(frame.substr(3, nl - 3)), blob.size());
            ASSERT_EQ(frame.substr(nl + 1), blob);
        } else {
            response.error = blob;
            const std::string frame = format_response(response);
            ASSERT_EQ(frame.rfind("ERR ", 0), 0U);
            // The status line is the whole frame: exactly one LF, at the end.
            ASSERT_EQ(frame.find('\n'), frame.size() - 1);
        }
    }
}

}  // namespace
