// Tests for the conditional vector C = C1 ⊕ … ⊕ Cn (Eq. 1-2).
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/gan/cond_vector.hpp"

namespace {

using kinet::Rng;
using namespace kinet::data;  // NOLINT
using kinet::gan::CondVectorBuilder;

std::vector<ColumnMeta> schema() {
    return {
        ColumnMeta::categorical_column("proto", {"tcp", "udp", "icmp"}),
        ColumnMeta::continuous_column("bytes"),
        ColumnMeta::categorical_column("event", {"dns", "http", "mqtt", "ntp"}),
    };
}

CondDraw make_draw(std::size_t proto, std::size_t event, std::size_t anchor_col,
                   std::size_t anchor_val) {
    CondDraw d;
    d.row = 0;
    d.values = {proto, event};
    d.anchor_column = anchor_col;
    d.anchor_value = anchor_val;
    return d;
}

TEST(CondVector, LayoutConcatenatesBlocks) {
    const CondVectorBuilder builder(schema(), {0, 2});
    EXPECT_EQ(builder.width(), 7U);  // 3 + 4
    EXPECT_EQ(builder.block_count(), 2U);
    EXPECT_EQ(builder.block_offset(0), 0U);
    EXPECT_EQ(builder.block_width(0), 3U);
    EXPECT_EQ(builder.block_offset(1), 3U);
    EXPECT_EQ(builder.block_width(1), 4U);
}

TEST(CondVector, EncodeSetsOneHotPerBlock) {
    const CondVectorBuilder builder(schema(), {0, 2});
    const std::vector<CondDraw> draws = {make_draw(1, 3, 0, 1), make_draw(0, 2, 1, 2)};
    const auto c = builder.encode(draws);
    EXPECT_EQ(c.rows(), 2U);
    EXPECT_EQ(c.cols(), 7U);

    // Row 0: proto=udp (index 1), event=ntp (index 3).
    EXPECT_FLOAT_EQ(c(0, 1), 1.0F);
    EXPECT_FLOAT_EQ(c(0, 3 + 3), 1.0F);
    float total0 = 0.0F;
    for (std::size_t j = 0; j < 7; ++j) {
        total0 += c(0, j);
    }
    EXPECT_FLOAT_EQ(total0, 2.0F);  // exactly one hot per block
}

TEST(CondVector, AnchorOnlyEncodingLeavesOtherBlocksZero) {
    const CondVectorBuilder builder(schema(), {0, 2});
    const std::vector<CondDraw> draws = {make_draw(1, 3, 1, 3)};
    const auto c = builder.encode_anchor_only(draws);
    float total = 0.0F;
    for (std::size_t j = 0; j < 7; ++j) {
        total += c(0, j);
    }
    EXPECT_FLOAT_EQ(total, 1.0F);
    EXPECT_FLOAT_EQ(c(0, 3 + 3), 1.0F);  // only the anchored event block
}

TEST(CondVector, DecodeRowRecoversValues) {
    const CondVectorBuilder builder(schema(), {0, 2});
    const std::vector<CondDraw> draws = {make_draw(2, 1, 0, 2)};
    const auto c = builder.encode(draws);
    const auto decoded = builder.decode_row(c, 0);
    ASSERT_EQ(decoded.size(), 2U);
    EXPECT_EQ(decoded[0], 2U);
    EXPECT_EQ(decoded[1], 1U);
}

TEST(CondVector, RejectsContinuousColumns) {
    EXPECT_THROW(CondVectorBuilder(schema(), {1}), kinet::Error);
    EXPECT_THROW(CondVectorBuilder(schema(), {}), kinet::Error);
    EXPECT_THROW(CondVectorBuilder(schema(), {9}), kinet::Error);
}

TEST(CondVector, RejectsOutOfRangeValues) {
    const CondVectorBuilder builder(schema(), {0});
    CondDraw d;
    d.values = {7};  // proto has only 3 categories
    d.anchor_column = 0;
    d.anchor_value = 7;
    const std::vector<CondDraw> draws = {d};
    EXPECT_THROW((void)builder.encode(draws), kinet::Error);
    EXPECT_THROW((void)builder.encode_anchor_only(draws), kinet::Error);
}

}  // namespace
