// Tests for the shared GAN machinery: OutputActivation, cond penalty,
// network factories.
#include <gtest/gtest.h>

#include <cmath>

#include "src/data/transformer.hpp"
#include "src/gan/gan_common.hpp"

namespace {

using kinet::Rng;
using namespace kinet::data;   // NOLINT
using namespace kinet::gan;    // NOLINT
using Matrix = kinet::tensor::Matrix;

std::vector<OutputSpan> demo_spans() {
    // [alpha(1), mode(2), cat(3)] = width 6
    std::vector<OutputSpan> spans(3);
    spans[0] = {0, SpanKind::continuous_alpha, 0, 1};
    spans[1] = {0, SpanKind::mode_onehot, 1, 2};
    spans[2] = {1, SpanKind::category_onehot, 3, 3};
    return spans;
}

TEST(OutputActivation, ProducesTanhAlphaAndSimplexSpans) {
    Rng rng(900);
    OutputActivation act(demo_spans(), 0.3F, rng);
    Matrix logits(10, 6);
    for (auto& v : logits.data()) {
        v = static_cast<float>(rng.uniform(-3.0, 3.0));
    }
    const Matrix out = act.forward(logits, true);
    for (std::size_t r = 0; r < out.rows(); ++r) {
        EXPECT_GE(out(r, 0), -1.0F);
        EXPECT_LE(out(r, 0), 1.0F);
        EXPECT_NEAR(out(r, 1) + out(r, 2), 1.0F, 1e-5F);
        EXPECT_NEAR(out(r, 3) + out(r, 4) + out(r, 5), 1.0F, 1e-5F);
    }
}

TEST(OutputActivation, BackwardShapesAndTanhGradient) {
    Rng rng(901);
    OutputActivation act(demo_spans(), 0.3F, rng);
    Matrix logits(4, 6, 0.5F);
    const Matrix out = act.forward(logits, true);
    Matrix grad_out(4, 6, 1.0F);
    const Matrix grad_in = act.backward(grad_out);
    EXPECT_EQ(grad_in.rows(), 4U);
    EXPECT_EQ(grad_in.cols(), 6U);
    // Alpha column: d tanh = 1 - y^2.
    for (std::size_t r = 0; r < 4; ++r) {
        const float y = out(r, 0);
        EXPECT_NEAR(grad_in(r, 0), 1.0F - y * y, 1e-5F);
    }
}

TEST(OutputActivation, GumbelSamplingIsStochasticAcrossForwards) {
    Rng rng(902);
    OutputActivation act(demo_spans(), 0.2F, rng);
    const Matrix logits(1, 6, 0.0F);
    const Matrix a = act.forward(logits, true);
    const Matrix b = act.forward(logits, true);
    EXPECT_NE(a, b);  // fresh Gumbel noise each pass
}

TEST(Factories, GeneratorAndDiscriminatorShapes) {
    Rng rng(903);
    auto gen = make_generator_trunk(16, 32, 2, 10, rng);
    const Matrix z(4, 16, 0.1F);
    const Matrix out = gen->forward(z, true);
    EXPECT_EQ(out.rows(), 4U);
    EXPECT_EQ(out.cols(), 10U);

    auto disc = make_discriminator(10, 32, 2, 0.3F, rng);
    const Matrix logit = disc->forward(out, true);
    EXPECT_EQ(logit.cols(), 1U);
}

TEST(CondPenalty, ZeroWhenGeneratorCopiesCondition) {
    Rng rng(904);
    const std::vector<ColumnMeta> schema = {
        ColumnMeta::categorical_column("a", {"x", "y", "z"}),
    };
    const CondVectorBuilder builder(schema, {0});
    std::vector<OutputSpan> spans(1);
    spans[0] = {0, SpanKind::category_onehot, 0, 3};

    CondDraw d;
    d.values = {1};
    d.anchor_column = 0;
    d.anchor_value = 1;
    const std::vector<CondDraw> draws = {d};
    const Matrix cond = builder.encode(draws);

    // Generator output that copies the condition (with epsilon smoothing).
    Matrix output(1, 3, 1e-6F);
    output(0, 1) = 1.0F - 2e-6F;
    const auto perfect = cond_bce_penalty(output, cond, builder, spans);

    // Output that contradicts the condition.
    Matrix wrong(1, 3, 1e-6F);
    wrong(0, 2) = 1.0F - 2e-6F;
    const auto bad = cond_bce_penalty(wrong, cond, builder, spans);

    EXPECT_LT(perfect.value, 0.01);
    EXPECT_GT(bad.value, 1.0);
    // Gradient pushes probability toward the conditioned value.
    EXPECT_LT(bad.grad(0, 1), 0.0F);
    EXPECT_GT(bad.grad(0, 2), 0.0F);
}

TEST(CondAdherence, CountsArgmaxMatches) {
    const std::vector<ColumnMeta> schema = {
        ColumnMeta::categorical_column("a", {"x", "y"}),
    };
    const CondVectorBuilder builder(schema, {0});
    std::vector<OutputSpan> spans(1);
    spans[0] = {0, SpanKind::category_onehot, 0, 2};

    CondDraw d0;
    d0.values = {0};
    d0.anchor_column = 0;
    d0.anchor_value = 0;
    CondDraw d1 = d0;
    d1.values = {1};
    d1.anchor_value = 1;
    const std::vector<CondDraw> draws = {d0, d1};
    const Matrix cond = builder.encode(draws);

    Matrix output(2, 2);
    output(0, 0) = 0.9F;  // matches condition 0
    output(0, 1) = 0.1F;
    output(1, 0) = 0.7F;  // contradicts condition 1
    output(1, 1) = 0.3F;
    EXPECT_NEAR(cond_adherence_rate(output, cond, builder, spans), 0.5, 1e-9);
}

TEST(Helpers, NoiseAndTargets) {
    Rng rng(905);
    const Matrix z = sample_noise(1000, 4, rng);
    double mean = 0.0;
    for (float v : z.data()) {
        mean += v;
    }
    mean /= static_cast<double>(z.size());
    EXPECT_NEAR(mean, 0.0, 0.1);

    const Matrix ones = constant_targets(3, 1.0F);
    EXPECT_EQ(ones.rows(), 3U);
    EXPECT_FLOAT_EQ(ones(2, 0), 1.0F);
}

TEST(SpanResolution, MapsCondBlocksToTransformerSpans) {
    Rng rng(906);
    Table t({
        ColumnMeta::categorical_column("a", {"x", "y"}),
        ColumnMeta::continuous_column("v"),
        ColumnMeta::categorical_column("b", {"p", "q", "r"}),
    });
    for (int i = 0; i < 50; ++i) {
        t.append_row({static_cast<float>(i % 2), static_cast<float>(i), static_cast<float>(i % 3)});
    }
    TableTransformer tf;
    tf.fit(t, TransformerOptions{}, rng);
    const CondVectorBuilder builder(t.schema(), {2, 0});
    const auto spans = category_spans_for_blocks(tf, builder);
    ASSERT_EQ(spans.size(), 2U);
    EXPECT_EQ(spans[0].width, 3U);  // column "b"
    EXPECT_EQ(spans[1].width, 2U);  // column "a"
}

}  // namespace
