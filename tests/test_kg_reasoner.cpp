// Tests for the forward-chaining RDFS reasoner.
#include <gtest/gtest.h>

#include "src/kg/ontology.hpp"
#include "src/kg/reasoner.hpp"

namespace {

using namespace kinet::kg;  // NOLINT

TEST(Reasoner, SubclassTransitivity) {
    TripleStore store;
    Ontology onto(store);
    onto.declare_subclass("Camera", "IoTDevice");
    onto.declare_subclass("IoTDevice", "Device");
    onto.declare_subclass("Device", "Asset");

    Reasoner::materialize(store);
    EXPECT_TRUE(store.contains("Camera", vocab::rdfs_subclass_of, "Device"));
    EXPECT_TRUE(store.contains("Camera", vocab::rdfs_subclass_of, "Asset"));
    EXPECT_TRUE(store.contains("IoTDevice", vocab::rdfs_subclass_of, "Asset"));
}

TEST(Reasoner, TypeInheritance) {
    TripleStore store;
    Ontology onto(store);
    onto.declare_subclass("Camera", "Device");
    onto.assert_instance("blink1", "Camera");

    Reasoner::materialize(store);
    EXPECT_TRUE(store.contains("blink1", vocab::rdf_type, "Device"));
}

TEST(Reasoner, DomainAndRangeTyping) {
    TripleStore store;
    Ontology onto(store);
    onto.declare_property("emits", "Device", "Event");
    store.add("cam", "emits", "motion1");

    Reasoner::materialize(store);
    EXPECT_TRUE(store.contains("cam", vocab::rdf_type, "Device"));
    EXPECT_TRUE(store.contains("motion1", vocab::rdf_type, "Event"));
}

TEST(Reasoner, RangeTypingSkipsNumericLiterals) {
    TripleStore store;
    Ontology onto(store);
    onto.declare_property("minPort", "Signature", "Port");
    store.add_number("cve", "minPort", 1000.0);

    Reasoner::materialize(store);
    // The literal must not be typed as a Port individual.
    const SymbolId num = store.symbols().intern_number(1000.0);
    const SymbolId type = store.symbols().find(vocab::rdf_type);
    const SymbolId port = store.symbols().find("Port");
    EXPECT_FALSE(store.contains(num, type, port));
}

TEST(Reasoner, MaterializeIsIdempotent) {
    TripleStore store;
    Ontology onto(store);
    onto.declare_subclass("A", "B");
    onto.declare_subclass("B", "C");
    onto.assert_instance("x", "A");

    const std::size_t first = Reasoner::materialize(store);
    EXPECT_GT(first, 0U);
    const std::size_t second = Reasoner::materialize(store);
    EXPECT_EQ(second, 0U);
}

TEST(Reasoner, IsSubclassOfWorksWithoutMaterialization) {
    TripleStore store;
    Ontology onto(store);
    onto.declare_subclass("A", "B");
    onto.declare_subclass("B", "C");
    onto.declare_subclass("C", "D");

    EXPECT_TRUE(Reasoner::is_subclass_of(store, "A", "D"));
    EXPECT_TRUE(Reasoner::is_subclass_of(store, "A", "A"));  // reflexive
    EXPECT_FALSE(Reasoner::is_subclass_of(store, "D", "A"));
    EXPECT_FALSE(Reasoner::is_subclass_of(store, "A", "Unknown"));
}

TEST(Reasoner, IsInstanceOfConsidersHierarchy) {
    TripleStore store;
    Ontology onto(store);
    onto.declare_subclass("Camera", "Device");
    onto.assert_instance("blink1", "Camera");

    EXPECT_TRUE(Reasoner::is_instance_of(store, "blink1", "Camera"));
    EXPECT_TRUE(Reasoner::is_instance_of(store, "blink1", "Device"));
    EXPECT_FALSE(Reasoner::is_instance_of(store, "blink1", "Event"));
}

TEST(Reasoner, HandlesSubclassCyclesWithoutHanging) {
    TripleStore store;
    Ontology onto(store);
    onto.declare_subclass("A", "B");
    onto.declare_subclass("B", "A");  // contradiction-ish cycle

    Reasoner::materialize(store);  // must terminate
    EXPECT_TRUE(Reasoner::is_subclass_of(store, "A", "B"));
    EXPECT_TRUE(Reasoner::is_subclass_of(store, "B", "A"));
}

TEST(Ontology, ClassAndInstanceEnumeration) {
    TripleStore store;
    Ontology onto(store);
    onto.declare_class("Device");
    onto.assert_instance("cam", "Device");
    onto.assert_instance("plug", "Device");

    const auto classes = onto.classes();
    EXPECT_NE(std::find(classes.begin(), classes.end(), "Device"), classes.end());
    EXPECT_EQ(onto.instances_of("Device").size(), 2U);
}

}  // namespace
