// Gradient checks and behavioural tests for every layer in the nn stack.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/check.hpp"
#include "src/nn/nn.hpp"
#include "src/tensor/ops.hpp"

namespace {

using namespace kinet::nn;  // NOLINT: test-local convenience
using kinet::Rng;
using Matrix = kinet::tensor::Matrix;

Matrix random_input(std::size_t rows, std::size_t cols, Rng& rng) {
    Matrix m(rows, cols);
    for (auto& v : m.data()) {
        v = static_cast<float>(rng.uniform(-1.5, 1.5));
    }
    return m;
}

constexpr double kTol = 2e-2;  // float32 + finite differences

TEST(GradCheck, Linear) {
    Rng rng(100);
    Linear layer(5, 3, rng);
    const auto res = check_gradients(layer, random_input(4, 5, rng), rng);
    EXPECT_LT(res.max_input_error, kTol);
    EXPECT_LT(res.max_param_error, kTol);
}

TEST(GradCheck, ReLU) {
    Rng rng(101);
    ReLU layer;
    // Keep inputs away from the kink at 0.
    Matrix x = random_input(4, 6, rng);
    for (auto& v : x.data()) {
        if (std::abs(v) < 0.05F) {
            v += 0.2F;
        }
    }
    const auto res = check_gradients(layer, x, rng);
    EXPECT_LT(res.max_input_error, kTol);
}

TEST(GradCheck, LeakyReLU) {
    Rng rng(102);
    LeakyReLU layer(0.2F);
    Matrix x = random_input(4, 6, rng);
    for (auto& v : x.data()) {
        if (std::abs(v) < 0.05F) {
            v += 0.2F;
        }
    }
    const auto res = check_gradients(layer, x, rng);
    EXPECT_LT(res.max_input_error, kTol);
}

TEST(GradCheck, TanhLayer) {
    Rng rng(103);
    Tanh layer;
    const auto res = check_gradients(layer, random_input(3, 5, rng), rng);
    EXPECT_LT(res.max_input_error, kTol);
}

TEST(GradCheck, SigmoidLayer) {
    Rng rng(104);
    Sigmoid layer;
    const auto res = check_gradients(layer, random_input(3, 5, rng), rng);
    EXPECT_LT(res.max_input_error, kTol);
}

TEST(GradCheck, BatchNormTrainingMode) {
    Rng rng(105);
    BatchNorm1d layer(4);
    const auto res = check_gradients(layer, random_input(8, 4, rng), rng, /*training=*/true);
    EXPECT_LT(res.max_input_error, 5e-2);
    EXPECT_LT(res.max_param_error, 5e-2);
}

TEST(GradCheck, SequentialMlp) {
    Rng rng(106);
    Sequential net;
    net.emplace<Linear>(6, 8, rng);
    net.emplace<Tanh>();
    net.emplace<Linear>(8, 4, rng);
    net.emplace<Sigmoid>();
    // Larger epsilon: through two saturating layers the float32 probe-loss
    // differences sit near rounding noise at the default step.  Tolerance:
    // with the packed GEMM's FMA contraction the finite-difference probe
    // shifts by a few ULPs more than the pre-packed kernels, landing the
    // worst parameter near 2.6e-2 (the analytic gradients are unchanged —
    // the same check passes at 2e-2 with KINET_GEMM_KERNEL=generic), so
    // 3e-2 absorbs the FMA noise while keeping the regression tripwire.
    const auto res = check_gradients(net, random_input(5, 6, rng), rng, true, 5e-3F);
    EXPECT_LT(res.max_input_error, 3e-2);
    EXPECT_LT(res.max_param_error, 3e-2);
}

TEST(GradCheck, OdeBlock) {
    Rng rng(107);
    auto field = std::make_unique<Sequential>();
    field->emplace<Linear>(5, 5, rng);
    field->emplace<Tanh>();
    OdeBlock block(std::move(field), 4);
    const auto res = check_gradients(block, random_input(3, 5, rng), rng);
    EXPECT_LT(res.max_input_error, kTol);
    EXPECT_LT(res.max_param_error, kTol);
}

TEST(Linear, ForwardMatchesManualComputation) {
    Rng rng(108);
    Linear layer(2, 2, rng);
    layer.weight().value = Matrix{{1.0F, 2.0F}, {3.0F, 4.0F}};
    layer.bias().value = Matrix{{0.5F, -0.5F}};
    const Matrix x{{1.0F, 1.0F}};
    const Matrix y = layer.forward(x, true);
    EXPECT_FLOAT_EQ(y(0, 0), 4.5F);   // 1*1 + 1*3 + 0.5
    EXPECT_FLOAT_EQ(y(0, 1), 5.5F);   // 1*2 + 1*4 - 0.5
}

TEST(Dropout, InferenceIsIdentityTrainingDropsAndScales) {
    Rng rng(109);
    Dropout layer(0.5F, rng);
    const Matrix x(16, 16, 1.0F);
    const Matrix eval_out = layer.forward(x, false);
    EXPECT_EQ(eval_out, x);

    const Matrix train_out = layer.forward(x, true);
    std::size_t zeros = 0;
    for (float v : train_out.data()) {
        if (v == 0.0F) {
            ++zeros;
        } else {
            EXPECT_FLOAT_EQ(v, 2.0F);  // inverted scaling 1/(1-p)
        }
    }
    EXPECT_GT(zeros, 50U);
    EXPECT_LT(zeros, 200U);
}

TEST(Dropout, BackwardUsesSameMask) {
    Rng rng(110);
    Dropout layer(0.5F, rng);
    const Matrix x(4, 4, 1.0F);
    const Matrix y = layer.forward(x, true);
    const Matrix g = layer.backward(Matrix(4, 4, 1.0F));
    for (std::size_t i = 0; i < y.data().size(); ++i) {
        EXPECT_FLOAT_EQ(g.data()[i], y.data()[i]);  // same mask and scale
    }
}

TEST(BatchNorm, NormalizesBatchInTraining) {
    Rng rng(111);
    BatchNorm1d layer(2);
    Matrix x(64, 2);
    for (std::size_t r = 0; r < 64; ++r) {
        x(r, 0) = static_cast<float>(rng.normal(5.0, 2.0));
        x(r, 1) = static_cast<float>(rng.normal(-3.0, 0.5));
    }
    const Matrix y = layer.forward(x, true);
    const Matrix mean = kinet::tensor::col_mean(y);
    const Matrix var = kinet::tensor::col_var(y);
    EXPECT_NEAR(mean(0, 0), 0.0F, 1e-4F);
    EXPECT_NEAR(var(0, 1), 1.0F, 1e-2F);
}

TEST(BatchNorm, RunningStatsConvergeForInference) {
    Rng rng(112);
    BatchNorm1d layer(1);
    for (int i = 0; i < 200; ++i) {
        Matrix x(32, 1);
        for (auto& v : x.data()) {
            v = static_cast<float>(rng.normal(10.0, 1.0));
        }
        (void)layer.forward(x, true);
    }
    // At inference a sample at the running mean maps near gamma*0 + beta = 0.
    Matrix probe(1, 1, 10.0F);
    const Matrix y = layer.forward(probe, false);
    EXPECT_NEAR(y(0, 0), 0.0F, 0.2F);
}

TEST(OdeBlock, ReducesToIdentityPlusFieldForOneStep) {
    Rng rng(113);
    auto field = std::make_unique<Sequential>();
    field->emplace<Linear>(3, 3, rng);
    OdeBlock block(std::move(field), 1);
    const Matrix x = random_input(2, 3, rng);
    const Matrix y = block.forward(x, true);
    // One Euler step: y = x + 1.0 * f(x); verify shape and that y != x.
    EXPECT_EQ(y.rows(), x.rows());
    EXPECT_EQ(y.cols(), x.cols());
    EXPECT_NE(y, x);
}

TEST(OdeBlock, RejectsShapeChangingField) {
    Rng rng(114);
    auto field = std::make_unique<Sequential>();
    field->emplace<Linear>(3, 4, rng);
    OdeBlock block(std::move(field), 2);
    EXPECT_THROW((void)block.forward(random_input(2, 3, rng), true), kinet::Error);
}

TEST(Sequential, CollectsParametersFromAllLayers) {
    Rng rng(115);
    Sequential net;
    net.emplace<Linear>(4, 4, rng);
    net.emplace<BatchNorm1d>(4);
    net.emplace<Linear>(4, 2, rng);
    const auto params = net.parameters();
    EXPECT_EQ(params.size(), 6U);  // 2x (W, b) + (gamma, beta)
    net.zero_grad();
    for (const auto* p : params) {
        for (float g : p->grad.data()) {
            EXPECT_EQ(g, 0.0F);
        }
    }
}

TEST(Gumbel, ForwardProducesDistributionOverSpan) {
    Rng rng(116);
    Matrix logits(8, 5, 0.0F);
    const Matrix noise = gumbel_noise(8, 5, rng);
    gumbel_softmax_forward_span(logits, noise, 1, 4, 0.5F);
    for (std::size_t r = 0; r < 8; ++r) {
        float total = 0.0F;
        for (std::size_t c = 1; c < 4; ++c) {
            total += logits(r, c);
            EXPECT_GE(logits(r, c), 0.0F);
        }
        EXPECT_NEAR(total, 1.0F, 1e-5F);
        EXPECT_FLOAT_EQ(logits(r, 0), 0.0F);
        EXPECT_FLOAT_EQ(logits(r, 4), 0.0F);
    }
}

TEST(Gumbel, LowTemperatureConcentratesOnFavouredLogit) {
    Rng rng(117);
    std::size_t wins = 0;
    for (int trial = 0; trial < 200; ++trial) {
        Matrix logits(1, 3);
        logits(0, 0) = 5.0F;  // strongly favoured
        const Matrix noise = gumbel_noise(1, 3, rng);
        gumbel_softmax_forward_span(logits, noise, 0, 3, 0.1F);
        if (logits(0, 0) > logits(0, 1) && logits(0, 0) > logits(0, 2)) {
            ++wins;
        }
    }
    EXPECT_GT(wins, 170U);
}

}  // namespace
