// Async training-job subsystem: JobManager unit tests plus the server-level
// TRAIN async=1 / POLL / CANCEL / JOBS lifecycle — including the acceptance
// scenario (concurrent async TRAINs never blocking SAMPLE on a loaded
// model) and the new training sources (CSV ingestion, UNSW domain).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/csv.hpp"
#include "src/core/kinetgan.hpp"
#include "src/kg/network_kg.hpp"
#include "src/netsim/lab_simulator.hpp"
#include "src/netsim/unsw_synthesizer.hpp"
#include "src/service/client.hpp"
#include "src/service/jobs.hpp"
#include "src/service/protocol.hpp"
#include "src/service/server.hpp"

namespace {

using namespace kinet;           // NOLINT
using namespace kinet::service;  // NOLINT

// ------------------------------------------------------------- JobManager

std::map<std::string, std::string> wait_terminal(SynthServer& server, std::uint64_t id) {
    for (;;) {
        const Response r = server.handle(parse_request("POLL " + std::to_string(id)));
        if (!r.ok) {
            ADD_FAILURE() << "POLL failed: " << r.error;
            return {};
        }
        auto kv = parse_kv_payload(r.payload);
        const std::string& state = kv.at("state");
        if (state == "done" || state == "failed" || state == "cancelled") {
            return kv;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

TEST(JobManager, RunsJobsToDoneWithProgress) {
    JobManager manager(2);
    EXPECT_EQ(manager.worker_count(), 2U);
    const std::uint64_t id = manager.submit("m", 3, [](JobManager::Context& ctx) {
        for (std::size_t e = 1; e <= 3; ++e) {
            ctx.report_progress(e);
        }
    });
    for (;;) {
        const auto info = manager.info(id);
        ASSERT_TRUE(info.has_value());
        if (info->state == JobState::done) {
            EXPECT_EQ(info->epochs_done, 3U);
            EXPECT_EQ(info->epochs_total, 3U);
            EXPECT_EQ(info->model, "m");
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_FALSE(manager.info(999).has_value());
}

TEST(JobManager, FailedJobsKeepTheErrorMessage) {
    JobManager manager(1);
    const std::uint64_t id = manager.submit("m", 1, [](JobManager::Context&) {
        throw Error("deliberate failure");
    });
    for (;;) {
        const auto info = manager.info(id);
        ASSERT_TRUE(info.has_value());
        if (info->state == JobState::failed) {
            EXPECT_NE(info->error.find("deliberate failure"), std::string::npos);
            break;
        }
        ASSERT_NE(info->state, JobState::done);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

TEST(JobManager, CancelsRunningAndQueuedJobs) {
    JobManager manager(1);  // one worker: the second job queues behind the first
    std::atomic<bool> entered{false};
    const std::uint64_t running = manager.submit("a", 100, [&](JobManager::Context& ctx) {
        entered.store(true);
        while (!ctx.cancel_requested()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        throw Error("cancelled");  // cooperative abort, like KiNetGan::fit
    });
    const std::uint64_t queued = manager.submit("b", 100, [](JobManager::Context&) {});
    while (!entered.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // The queued job cancels instantly, without ever running; the returned
    // snapshot already shows the terminal state.
    const auto queued_info = manager.request_cancel(queued);
    ASSERT_TRUE(queued_info.has_value());
    EXPECT_EQ(queued_info->state, JobState::cancelled);
    // The running job stops at its next cancellation check; the resulting
    // throw records `cancelled`, not `failed`.
    EXPECT_TRUE(manager.request_cancel(running).has_value());
    for (;;) {
        const auto info = manager.info(running);
        if (info->state == JobState::cancelled) {
            break;
        }
        ASSERT_NE(info->state, JobState::failed);
        ASSERT_NE(info->state, JobState::done);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_FALSE(manager.request_cancel(12345).has_value());  // unknown id

    const auto all = manager.list();
    ASSERT_EQ(all.size(), 2U);
    EXPECT_EQ(manager.size(), 2U);
    EXPECT_EQ(all[0].id, running);
    EXPECT_EQ(all[1].id, queued);
}

TEST(JobManager, StopCancelsEverythingAndJoins) {
    JobManager manager(1);
    std::atomic<bool> entered{false};
    (void)manager.submit("a", 10, [&](JobManager::Context& ctx) {
        entered.store(true);
        while (!ctx.cancel_requested()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        throw Error("cancelled");
    });
    const std::uint64_t queued = manager.submit("b", 10, [](JobManager::Context&) {});
    while (!entered.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    manager.stop();
    EXPECT_EQ(manager.info(queued)->state, JobState::cancelled);
    EXPECT_THROW((void)manager.submit("c", 1, [](JobManager::Context&) {}), Error);
}

// ---------------------------------------------------- server job lifecycle

/// Shared fixture: one warm model (trained synchronously) for SAMPLE
/// latency/determinism checks while async jobs run.
class AsyncTrainTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        ServerOptions options;
        options.train_workers = 2;
        options.snapshot_dir = ::testing::TempDir();
        options.data_dir = ::testing::TempDir();
        server_ = new SynthServer(options);
        const Response r = server_->handle(parse_request(
            "TRAIN warm records=400 sim-seed=11 epochs=2 gan-seed=1"));
        ASSERT_TRUE(r.ok) << r.error;
    }
    static void TearDownTestSuite() {
        delete server_;
        server_ = nullptr;
    }

    static SynthServer* server_;
};

SynthServer* AsyncTrainTest::server_ = nullptr;

TEST_F(AsyncTrainTest, AsyncLifecycleRegistersTheModel) {
    const Response queued = server_->handle(parse_request(
        "TRAIN async-a records=300 sim-seed=5 epochs=2 gan-seed=9 async=1"));
    ASSERT_TRUE(queued.ok) << queued.error;
    const auto ack = parse_kv_payload(queued.payload);
    const std::uint64_t id = std::stoull(ack.at("job"));
    EXPECT_EQ(ack.at("model"), "async-a");
    EXPECT_EQ(ack.at("epochs"), "2");

    const auto final_info = wait_terminal(*server_, id);
    EXPECT_EQ(final_info.at("state"), "done");
    EXPECT_EQ(final_info.at("epochs_done"), "2");
    EXPECT_EQ(final_info.at("epochs_total"), "2");

    // The completed job put() the model into the registry; it serves the
    // exact same stream a synchronous TRAIN with identical seeds produces.
    const Response sync = server_->handle(parse_request(
        "TRAIN sync-a records=300 sim-seed=5 epochs=2 gan-seed=9"));
    ASSERT_TRUE(sync.ok) << sync.error;
    const Response a = server_->handle(parse_request("SAMPLE async-a 50 seed=77"));
    const Response b = server_->handle(parse_request("SAMPLE sync-a 50 seed=77"));
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.payload, b.payload);

    const Response listing = server_->handle(parse_request("JOBS"));
    ASSERT_TRUE(listing.ok);
    EXPECT_NE(listing.payload.find("model=async-a"), std::string::npos);
    EXPECT_NE(listing.payload.find("state=done"), std::string::npos);
}

TEST_F(AsyncTrainTest, SampleStaysServedWhileTrainsAreInFlight) {
    // Acceptance scenario: 2 training workers, 4 async TRAINs in flight; a
    // SAMPLE on the warm model must complete without waiting for any fit
    // and return its usual deterministic stream.
    const Response reference = server_->handle(parse_request("SAMPLE warm 60 seed=4242"));
    ASSERT_TRUE(reference.ok) << reference.error;

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 4; ++i) {
        const Response queued = server_->handle(parse_request(
            "TRAIN flight-" + std::to_string(i) +
            " records=400 sim-seed=11 epochs=40 gan-seed=2 async=1"));
        ASSERT_TRUE(queued.ok) << queued.error;
        ids.push_back(std::stoull(parse_kv_payload(queued.payload).at("job")));
    }

    const Response during = server_->handle(parse_request("SAMPLE warm 60 seed=4242"));
    ASSERT_TRUE(during.ok) << during.error;
    EXPECT_EQ(during.payload, reference.payload);

    // With 40-epoch fits on a 2-worker executor, the jobs cannot all be
    // terminal by the time the SAMPLE returned — proving it didn't queue
    // behind them.
    std::size_t live = 0;
    for (const std::uint64_t id : ids) {
        const auto kv = parse_kv_payload(
            server_->handle(parse_request("POLL " + std::to_string(id))).payload);
        const std::string& state = kv.at("state");
        if (state == "queued" || state == "running") {
            ++live;
        }
    }
    EXPECT_GT(live, 0U);

    // Don't burn CI minutes finishing four 40-epoch fits: cancel them.
    for (const std::uint64_t id : ids) {
        ASSERT_TRUE(server_->handle(parse_request("CANCEL " + std::to_string(id))).ok);
    }
    for (const std::uint64_t id : ids) {
        const auto kv = wait_terminal(*server_, id);
        EXPECT_TRUE(kv.at("state") == "cancelled" || kv.at("state") == "done")
            << kv.at("state");
    }
}

TEST_F(AsyncTrainTest, CancelMidFitLeavesNoModelBehind) {
    const Response queued = server_->handle(parse_request(
        "TRAIN doomed records=400 sim-seed=3 epochs=500 gan-seed=4 async=1"));
    ASSERT_TRUE(queued.ok) << queued.error;
    const std::uint64_t id = std::stoull(parse_kv_payload(queued.payload).at("job"));

    // Wait until the fit is demonstrably past its first epoch, then cancel.
    for (;;) {
        const auto kv = parse_kv_payload(
            server_->handle(parse_request("POLL " + std::to_string(id))).payload);
        if (kv.at("state") == "running" && std::stoull(kv.at("epochs_done")) >= 1) {
            break;
        }
        ASSERT_EQ(kv.count("error"), 0U);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const Response cancel = server_->handle(parse_request("CANCEL " + std::to_string(id)));
    ASSERT_TRUE(cancel.ok) << cancel.error;

    const auto final_info = wait_terminal(*server_, id);
    EXPECT_EQ(final_info.at("state"), "cancelled");
    EXPECT_LT(std::stoull(final_info.at("epochs_done")), 500U);
    // The cancelled fit never reached the registry.
    EXPECT_FALSE(server_->handle(parse_request("SAMPLE doomed 5")).ok);
}

TEST_F(AsyncTrainTest, PollAndCancelRejectUnknownJobs) {
    EXPECT_FALSE(server_->handle(parse_request("POLL 999999")).ok);
    EXPECT_FALSE(server_->handle(parse_request("CANCEL 999999")).ok);
    EXPECT_FALSE(server_->handle(parse_request("POLL nonsense")).ok);
}

TEST_F(AsyncTrainTest, AsyncRejectsBadPlansSynchronously) {
    // Plan validation happens before the job is queued: the client hears
    // about a bad request immediately, not through a failed job.
    const Response bad = server_->handle(
        parse_request("TRAIN m split-frac=2.0 epochs=1 async=1"));
    EXPECT_FALSE(bad.ok);
    const Response jobs_before = server_->handle(parse_request("JOBS"));
    const Response bad2 = server_->handle(
        parse_request("TRAIN m source=csv:../../etc/passwd async=1"));
    EXPECT_FALSE(bad2.ok);
    EXPECT_EQ(server_->handle(parse_request("JOBS")).payload, jobs_before.payload);
}

// ----------------------------------------------------- new training data

TEST_F(AsyncTrainTest, TrainsFromCsvSource) {
    // Export a small lab capture, then train from it through the service.
    netsim::LabSimOptions sim;
    sim.records = 300;
    sim.seed = 21;
    const auto capture = netsim::LabTrafficSimulator(sim).generate();
    const std::string csv_name = "kinet_jobs_capture.csv";
    csv::write_file(::testing::TempDir() + csv_name, capture.to_csv());

    const Response r = server_->handle(parse_request(
        "TRAIN from-csv source=csv:" + csv_name + " epochs=2 gan-seed=6"));
    ASSERT_TRUE(r.ok) << r.error;
    const auto kv = parse_kv_payload(r.payload);
    EXPECT_EQ(kv.at("rows"), "300");

    // The CSV-trained model serves the lab schema and per-seed-deterministic
    // streams like any other model.  (Byte-identity with a sim-trained model
    // is not expected: to_csv rounds continuous values to 6 decimals.)
    const Response a = server_->handle(parse_request("SAMPLE from-csv 40 seed=8"));
    const Response b = server_->handle(parse_request("SAMPLE from-csv 40 seed=8"));
    ASSERT_TRUE(a.ok && b.ok) << a.error << b.error;
    EXPECT_EQ(a.payload, b.payload);
    const auto doc = csv::parse(a.payload);
    ASSERT_EQ(doc.header.size(), netsim::lab_schema().size());
    EXPECT_EQ(doc.header.front(), netsim::lab_schema().front().name);

    // split-frac applies to CSV sources too.
    const Response split = server_->handle(parse_request(
        "TRAIN from-csv-split source=csv:" + csv_name +
        " split-frac=0.3 split-seed=2 epochs=2"));
    ASSERT_TRUE(split.ok) << split.error;
    EXPECT_LT(std::stoull(parse_kv_payload(split.payload).at("rows")), 300U);

    EXPECT_FALSE(server_->handle(
        parse_request("TRAIN ghost source=csv:no_such_file.csv epochs=1")).ok);
    std::remove((::testing::TempDir() + csv_name).c_str());
}

TEST_F(AsyncTrainTest, TrainsTheUnswDomain) {
    const Response r = server_->handle(parse_request(
        "TRAIN site-unsw domain=unsw records=400 sim-seed=13 epochs=2 gan-seed=5"));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(parse_kv_payload(r.payload).at("domain"), "unsw");

    const Response sample = server_->handle(parse_request("SAMPLE site-unsw 30 seed=2"));
    ASSERT_TRUE(sample.ok) << sample.error;
    const auto doc = csv::parse(sample.payload);
    EXPECT_EQ(doc.rows.size(), 30U);
    // The served schema is the UNSW one, not the lab one.
    const auto schema = netsim::unsw_schema();
    ASSERT_EQ(doc.header.size(), schema.size());
    EXPECT_EQ(doc.header.front(), schema.front().name);

    const Response val = server_->handle(parse_request("VALIDATE site-unsw n=100 seed=1"));
    ASSERT_TRUE(val.ok) << val.error;
    const double validity = std::stod(parse_kv_payload(val.payload).at("validity"));
    EXPECT_GE(validity, 0.0);
    EXPECT_LE(validity, 1.0);
}

TEST(FitObserver, CancelledRefitLeavesTheModelUnfitted) {
    netsim::LabSimOptions sim;
    sim.records = 256;
    sim.seed = 4;
    const auto table = netsim::LabTrafficSimulator(sim).generate();
    core::KiNetGanOptions opts;
    opts.gan.epochs = 2;
    opts.gan.batch_size = 64;
    opts.gan.hidden_dim = 32;
    opts.gan.noise_dim = 16;
    core::KiNetGan model(kg::NetworkKg::build_lab().make_oracle(),
                         netsim::lab_conditional_columns(), opts);
    model.fit(table);
    ASSERT_TRUE(model.is_fitted());
    // A cancelled *re*-fit must not leave the first fit's flag standing on
    // half-overwritten state: the model goes back to unfitted.
    EXPECT_THROW(model.fit(table, [](std::size_t, std::size_t) { return false; }), Error);
    EXPECT_FALSE(model.is_fitted());
    EXPECT_THROW((void)model.sample(10), Error);
    // A clean re-fit restores service.
    model.fit(table);
    EXPECT_TRUE(model.is_fitted());
}

TEST(SynthServerRestart, AsyncTrainSurvivesStopStart) {
    ServerOptions options;
    options.train_workers = 1;
    SynthServer server(options);
    server.start();
    server.stop();
    server.start();  // restart: listener re-binds, executor still alive
    const Response queued = server.handle(parse_request(
        "TRAIN revived records=300 sim-seed=2 epochs=2 gan-seed=1 async=1"));
    ASSERT_TRUE(queued.ok) << queued.error;
    const auto final_info =
        wait_terminal(server, std::stoull(parse_kv_payload(queued.payload).at("job")));
    EXPECT_EQ(final_info.at("state"), "done");
    EXPECT_TRUE(server.handle(parse_request("SAMPLE revived 10 seed=1")).ok);
    server.stop();
}

// ------------------------------------------------------------ over TCP

TEST_F(AsyncTrainTest, AsyncJobsWorkOverTcp) {
    server_->start();
    auto client = SynthClient::connect("127.0.0.1", server_->port());
    TrainSpec spec;
    spec.records = 300;
    spec.sim_seed = 5;
    spec.epochs = 2;
    spec.gan_seed = 9;
    const std::uint64_t id = client.train_async("tcp-async", spec);
    // The connection stays fully usable while the job runs.
    client.ping();
    const auto final_info = client.wait_for_job(id, 10);
    EXPECT_EQ(final_info.at("state"), "done");
    EXPECT_EQ(client.sample_csv("tcp-async", 20, 3),
              server_->handle(parse_request("SAMPLE tcp-async 20 seed=3")).payload);
    EXPECT_NE(client.jobs().find("model=tcp-async"), std::string::npos);
    client.quit();
}

}  // namespace
