// Chaos suite: deterministic fault injection, crash-safe persistence, and
// self-healing fleet repair (docs/robustness.md).
//
// Everything here is driven by seeded failpoints and explicit crash hatches
// (SynthServer::crash_stop), never by wall-clock races: the same binary
// produces the same failure sequence on every run.  The suite proves the
// three robustness pillars end to end —
//
//   1. failpoints: spec grammar, seeded-deterministic probability, hit
//      gating (after=/times=), env + FAULT-op control, crash mode;
//   2. persistence: atomic snapshot commit (a torn write never corrupts the
//      store), journaled jobs, kill-9-equivalent restart recovering the
//      registry warm with byte-identical samples, interrupted jobs marked
//      failed and resubmitted;
//   3. self-healing: per-peer circuit breaker opening on a dead member,
//      retryable-vs-permanent error classification, REPLICATE rejection
//      codes, and DIGEST-driven anti-entropy reconverging a crash-looped
//      member.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/backoff.hpp"
#include "src/common/bytes.hpp"
#include "src/common/check.hpp"
#include "src/common/failpoint.hpp"
#include "src/service/client.hpp"
#include "src/service/cluster/breaker.hpp"
#include "src/service/cluster/cluster.hpp"
#include "src/service/cluster/config.hpp"
#include "src/service/cluster/membership.hpp"
#include "src/service/cluster/ring.hpp"
#include "src/service/journal.hpp"
#include "src/service/persistence.hpp"
#include "src/service/protocol.hpp"
#include "src/service/server.hpp"
#include "src/service/socket.hpp"

namespace {

using namespace kinet;           // NOLINT
using namespace kinet::service;  // NOLINT

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define KINET_CHAOS_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define KINET_CHAOS_TSAN 1
#endif

/// A fresh, empty scratch directory under the test temp root.  Removes any
/// leftover from a previous run first — recovery tests must never pick up
/// a stale manifest.
std::string fresh_dir(const std::string& tag) {
    const std::string path = ::testing::TempDir() + "kinet_chaos_" + tag;
    std::filesystem::remove_all(path);
    return path;
}

/// Arms one failpoint for the scope of a test and guarantees disarm on exit
/// (failpoint state is process-global).
struct FailpointGuard {
    ~FailpointGuard() { failpoint::reset_all(); }
};

// ------------------------------------------------------------- failpoints

TEST(Failpoint, RegistryListsEveryNameAndRejectsUnknowns) {
    const auto& names = failpoint::registered_names();
    ASSERT_FALSE(names.empty());
    // Sorted (binary-searchable) and the sites this suite leans on exist.
    for (std::size_t i = 1; i < names.size(); ++i) {
        EXPECT_LT(names[i - 1], names[i]);
    }
    for (const char* name : {"socket.send", "socket.recv", "snapshot.commit",
                             "journal.append", "cluster.rpc", "registry.evict"}) {
        EXPECT_TRUE(failpoint::is_registered(name)) << name;
    }
    EXPECT_FALSE(failpoint::is_registered("no.such.site"));
    EXPECT_THROW(failpoint::configure("no.such.site", "error"), Error);
    EXPECT_THROW(failpoint::configure("socket.send", "explode"), Error);
    EXPECT_THROW(failpoint::configure("socket.send", "error,p=nope"), Error);
}

TEST(Failpoint, ErrorModeGatesOnAfterAndTimes) {
    FailpointGuard guard;
    failpoint::configure("registry.evict", "error,after=2,times=1");
    EXPECT_TRUE(failpoint::armed());
    failpoint::hit("registry.evict");  // 1: skipped by after=
    failpoint::hit("registry.evict");  // 2: skipped by after=
    EXPECT_THROW(failpoint::hit("registry.evict"), Error);  // 3: triggers
    failpoint::hit("registry.evict");  // 4: times= budget spent
    EXPECT_EQ(failpoint::hits("registry.evict"), 4U);
    failpoint::configure("registry.evict", "off");
    failpoint::hit("registry.evict");  // disarmed: free
    EXPECT_FALSE(failpoint::armed());
}

TEST(Failpoint, ProbabilityStreamIsSeedDeterministic) {
    FailpointGuard guard;
    const auto trigger_pattern = [](std::uint64_t seed) {
        failpoint::configure("registry.evict",
                             "error,p=0.5,seed=" + std::to_string(seed));
        std::vector<bool> pattern;
        for (int i = 0; i < 64; ++i) {
            bool threw = false;
            try {
                failpoint::hit("registry.evict");
            } catch (const Error&) {
                threw = true;
            }
            pattern.push_back(threw);
        }
        return pattern;
    };
    const auto first = trigger_pattern(7);
    const auto second = trigger_pattern(7);
    EXPECT_EQ(first, second) << "same seed must replay the same hit sequence";
    EXPECT_NE(first, trigger_pattern(8)) << "different seed, different stream";
    // p=0.5 over 64 draws lands well away from both degenerate extremes.
    const auto fired = static_cast<std::size_t>(
        std::count(first.begin(), first.end(), true));
    EXPECT_GT(fired, 10U);
    EXPECT_LT(fired, 54U);
}

TEST(Failpoint, DelayModeOnlyCountsWhenZeroMs) {
    FailpointGuard guard;
    failpoint::configure("registry.evict", "delay,ms=0");
    for (int i = 0; i < 5; ++i) {
        failpoint::hit("registry.evict");  // must not throw
    }
    EXPECT_EQ(failpoint::hits("registry.evict"), 5U);
    const std::string status = failpoint::render_status();
    EXPECT_NE(status.find("registry.evict"), std::string::npos) << status;
    EXPECT_NE(status.find("hits=5"), std::string::npos) << status;
}

TEST(Failpoint, EnvConfigureArmsAndRejectsTypos) {
    FailpointGuard guard;
    ASSERT_EQ(::setenv("KINET_FAILPOINTS", "registry.evict=delay,ms=0", 1), 0);
    failpoint::configure_from_env();
    failpoint::hit("registry.evict");
    EXPECT_EQ(failpoint::hits("registry.evict"), 1U);

    ASSERT_EQ(::setenv("KINET_FAILPOINTS", "tpyo.name=error", 1), 0);
    EXPECT_THROW(failpoint::configure_from_env(), Error);
    ASSERT_EQ(::unsetenv("KINET_FAILPOINTS"), 0);
}

#if defined(GTEST_HAS_DEATH_TEST) && !defined(KINET_CHAOS_TSAN)
TEST(FailpointDeathTest, CrashModeAbortsTheProcess) {
    EXPECT_DEATH(
        {
            failpoint::configure("registry.evict", "crash");
            failpoint::hit("registry.evict");
        },
        "");
}
#endif

// ------------------------------------------------- backoff and the breaker

TEST(Backoff, GrowsExponentiallyAndSaturates) {
    BackoffOptions opts;
    opts.base_ms = 50;
    opts.max_ms = 300;
    opts.multiplier = 2.0;
    opts.jitter = 0.0;
    Backoff backoff(opts, 0);
    EXPECT_EQ(backoff.next_delay_ms(), 50U);
    EXPECT_EQ(backoff.next_delay_ms(), 100U);
    EXPECT_EQ(backoff.next_delay_ms(), 200U);
    EXPECT_EQ(backoff.next_delay_ms(), 300U);  // capped
    EXPECT_EQ(backoff.next_delay_ms(), 300U);
    backoff.reset();
    EXPECT_EQ(backoff.next_delay_ms(), 50U);
}

TEST(Backoff, JitterIsSeedDeterministicAndBounded) {
    BackoffOptions opts;
    opts.base_ms = 100;
    opts.max_ms = 100000;
    opts.jitter = 0.25;
    Backoff a(opts, 42);
    Backoff b(opts, 42);
    Backoff c(opts, 43);
    bool any_diff = false;
    std::uint64_t expected_raw = 100;
    for (int i = 0; i < 8; ++i) {
        const std::uint64_t da = a.next_delay_ms();
        EXPECT_EQ(da, b.next_delay_ms());
        any_diff = any_diff || (da != c.next_delay_ms());
        // Jitter scales by uniform(0.75, 1.25) around the raw exponential.
        EXPECT_GE(da, expected_raw * 3 / 4);
        EXPECT_LE(da, expected_raw * 5 / 4 + 1);
        expected_raw = std::min<std::uint64_t>(expected_raw * 2, opts.max_ms);
    }
    EXPECT_TRUE(any_diff) << "different seeds should decorrelate";
}

TEST(Breaker, OpensAfterThresholdHalfOpensAndRecovers) {
    BreakerOptions opts;
    opts.failure_threshold = 2;
    opts.open_ms = 60;
    opts.max_open_ms = 240;
    opts.jitter = 0.0;
    CircuitBreaker breaker(opts, 1);
    EXPECT_TRUE(breaker.allow());
    breaker.record_failure();
    EXPECT_TRUE(breaker.allow()) << "one failure below threshold keeps it closed";
    breaker.record_failure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::open);
    EXPECT_FALSE(breaker.allow());
    EXPECT_EQ(breaker.opens(), 1U);

    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    EXPECT_TRUE(breaker.allow()) << "cooldown elapsed: one half-open trial";
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::half_open);
    EXPECT_FALSE(breaker.allow()) << "only one trial until it resolves";

    // Failed trial: reopen with a grown cooldown.
    breaker.record_failure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::open);
    EXPECT_EQ(breaker.opens(), 2U);
    std::this_thread::sleep_for(std::chrono::milliseconds(240));
    EXPECT_TRUE(breaker.allow());
    breaker.record_success();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::closed);
    EXPECT_TRUE(breaker.allow());
}

TEST(Breaker, ZeroThresholdDisables) {
    BreakerOptions opts;
    opts.failure_threshold = 0;
    CircuitBreaker breaker(opts, 0);
    for (int i = 0; i < 20; ++i) {
        breaker.record_failure();
        EXPECT_TRUE(breaker.allow());
    }
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::closed);
}

TEST(ErrorClassification, CodedErrorsSplitRetryableFromPermanent) {
    EXPECT_EQ(error_code("queue_full: request queue is full"), "queue_full");
    EXPECT_EQ(error_code("server: draining: going down"), "draining");
    EXPECT_EQ(error_code("Not A Code: detail"), "");
    EXPECT_EQ(error_code("no colon at all"), "");

    for (const char* retryable :
         {"queue_full: request queue is full", "draining: server is draining",
          "breaker_open: circuit for peer x is open", "unavailable: try later",
          "socket: connection refused", "client: server closed the connection"}) {
        EXPECT_TRUE(is_retryable_error(retryable)) << retryable;
    }
    for (const char* permanent :
         {"body_too_large: 1 bytes", "checksum_mismatch: snapshot",
          "short_body: REPLICATE body truncated", "bad_snapshot: bad magic",
          "model: unknown model 'x'", "failpoint: socket.send injected error"}) {
        EXPECT_FALSE(is_retryable_error(permanent)) << permanent;
    }
}

// ----------------------------------------------------------- job journal

TEST(Journal, RoundTripsRecordsAndToleratesTornTail) {
    const std::string dir = fresh_dir("journal");
    PersistentStore store(dir);  // creates the directory
    JobJournal journal(store.journal_path());
    journal.append_submit(1, 5, "m-a", "TRAIN m-a epochs=5 async=1");
    journal.append_terminal(1, JobState::done, "");
    journal.append_submit(2, 9, "m b sneaky", "");

    auto records = JobJournal::replay(journal.path());
    ASSERT_EQ(records.size(), 3U);
    EXPECT_EQ(records[0].kind, JobJournal::Record::Kind::submit);
    EXPECT_EQ(records[0].id, 1U);
    EXPECT_EQ(records[0].epochs_total, 5U);
    EXPECT_EQ(records[0].model, "m-a");
    EXPECT_EQ(records[0].request_line, "TRAIN m-a epochs=5 async=1");
    EXPECT_EQ(records[1].kind, JobJournal::Record::Kind::terminal);
    EXPECT_EQ(records[1].state, JobState::done);
    EXPECT_EQ(records[2].model, "m b sneaky") << "hex encoding keeps spaces intact";

    // A crash mid-append leaves a torn final line; replay stops there and
    // keeps every record that was individually fsynced before it.
    {
        std::ofstream out(journal.path(), std::ios::app | std::ios::binary);
        out << "v1 submit 3 7 746f726e";  // no newline, truncated record
    }
    records = JobJournal::replay(journal.path());
    EXPECT_EQ(records.size(), 3U);

    JobJournal::truncate(journal.path());
    EXPECT_TRUE(JobJournal::replay(journal.path()).empty());
    EXPECT_TRUE(JobJournal::replay(dir + "/no-such-journal").empty());
}

// ------------------------------------------------------- persistent store

TEST(PersistentStore, RoundTripsManifestAcrossReopen) {
    const std::string dir = fresh_dir("store");
    const std::string container = "opaque snapshot bytes";
    DigestEntry entry;
    entry.name = "../hostile name";  // must be confined by hex encoding
    entry.revision = 3;
    entry.bytes = container.size();
    entry.checksum = bytes::fnv1a(container);
    {
        PersistentStore store(dir);
        EXPECT_TRUE(store.manifest().empty());
        store.store(entry, container);
        ASSERT_EQ(store.manifest().size(), 1U);
        EXPECT_EQ(store.load(entry.name), container);
    }
    PersistentStore reopened(dir);
    ASSERT_EQ(reopened.manifest().size(), 1U);
    EXPECT_EQ(reopened.manifest()[0].name, entry.name);
    EXPECT_EQ(reopened.manifest()[0].revision, 3U);
    EXPECT_EQ(reopened.manifest()[0].checksum, entry.checksum);
    EXPECT_EQ(reopened.load(entry.name), container);

    reopened.remove(entry.name);
    EXPECT_TRUE(reopened.manifest().empty());
    EXPECT_THROW((void)reopened.load(entry.name), Error);
    PersistentStore after_remove(dir);
    EXPECT_TRUE(after_remove.manifest().empty());
}

TEST(PersistentStore, TornCommitNeverCorruptsTheStore) {
    FailpointGuard guard;
    const std::string dir = fresh_dir("torn");
    const std::string old_bytes = "generation one";
    DigestEntry entry;
    entry.name = "m";
    entry.revision = 1;
    entry.bytes = old_bytes.size();
    entry.checksum = bytes::fnv1a(old_bytes);
    {
        PersistentStore store(dir);
        store.store(entry, old_bytes);

        // Crash window between the snapshot tmp-write and the rename: the
        // update must vanish whole — the old generation stays loadable.
        failpoint::configure("snapshot.commit", "error");
        DigestEntry update = entry;
        update.revision = 2;
        const std::string new_bytes = "generation two";
        update.bytes = new_bytes.size();
        update.checksum = bytes::fnv1a(new_bytes);
        EXPECT_THROW(store.store(update, new_bytes), Error);
        failpoint::reset_all();
    }
    PersistentStore recovered(dir);
    ASSERT_EQ(recovered.manifest().size(), 1U);
    EXPECT_EQ(recovered.manifest()[0].revision, 1U) << "torn update must not be visible";
    EXPECT_EQ(recovered.load("m"), old_bytes);
}

// --------------------------------------------------- crash-safe server

/// Hash of a deterministic SAMPLE draw — the golden-sample fingerprint the
/// recovery tests compare across restarts.
std::uint64_t sample_fingerprint(SynthServer& server, const std::string& model) {
    auto client = SynthClient::connect("127.0.0.1", server.port());
    const std::string csv = client.sample_csv(model, 64, 99);
    client.quit();
    EXPECT_FALSE(csv.empty());
    return bytes::fnv1a(csv);
}

TEST(CrashRecovery, RegistryComesBackWarmWithGoldenSamples) {
    const std::string dir = fresh_dir("recover_registry");
    ServerOptions options;
    options.snapshot_dir = dir;
    options.persist = true;
    std::uint16_t port = 0;
    std::uint64_t golden = 0;
    {
        SynthServer server(options);
        server.start();
        port = server.port();
        const Response r = server.handle(
            parse_request("TRAIN chaos-gold records=300 sim-seed=5 epochs=2 gan-seed=9"));
        ASSERT_TRUE(r.ok) << r.error;
        golden = sample_fingerprint(server, "chaos-gold");
        // kill -9 equivalent: no graceful snapshotting, no journal terminals.
        server.crash_stop();
    }

    ServerOptions recover = options;
    recover.port = port;
    recover.recover = true;
    SynthServer restarted(recover);
    restarted.start();
    EXPECT_NE(restarted.registry().get("chaos-gold"), nullptr)
        << "manifest models must come back without re-training";
    EXPECT_EQ(sample_fingerprint(restarted, "chaos-gold"), golden)
        << "recovered model must serve byte-identical samples";

    const Response stats = restarted.handle(parse_request("STATS"));
    ASSERT_TRUE(stats.ok) << stats.error;
    EXPECT_NE(stats.payload.find("recovered_models=1"), std::string::npos) << stats.payload;
    EXPECT_NE(stats.payload.find("persisted_models=1"), std::string::npos) << stats.payload;
    restarted.stop();
}

TEST(CrashRecovery, InterruptedJobIsFailedAndResubmitted) {
    const std::string dir = fresh_dir("recover_jobs");
    const std::string train_line =
        "TRAIN chaos-int records=300 sim-seed=5 epochs=2 gan-seed=9 async=1";
    {
        // Forge the exact on-disk state a kill -9 mid-TRAIN leaves behind:
        // a journaled submit with no terminal record.
        PersistentStore store(dir);
        JobJournal journal(store.journal_path());
        journal.append_submit(1, 2, "chaos-int", train_line);
        journal.append_submit(2, 2, "chaos-done", "");
        journal.append_terminal(2, JobState::done, "");
    }

    ServerOptions options;
    options.snapshot_dir = dir;
    options.recover = true;
    SynthServer server(options);
    server.start();

    auto client = SynthClient::connect("127.0.0.1", server.port());
    // The interrupted job is terminal-failed with the canonical reason...
    const auto job1 = client.poll_job(1);
    EXPECT_EQ(job1.at("state"), "failed");
    EXPECT_NE(job1.at("error").find("interrupted"), std::string::npos) << job1.at("error");
    // ...the journaled terminal record is POLLable again...
    EXPECT_EQ(client.poll_job(2).at("state"), "done");
    // ...and the resumable request line was resubmitted as a fresh job.
    const auto resubmitted = client.wait_for_job(3, 200);
    EXPECT_EQ(resubmitted.at("state"), "done")
        << (resubmitted.count("error") != 0U ? resubmitted.at("error") : "");
    EXPECT_NE(server.registry().get("chaos-int"), nullptr);

    const Response stats = server.handle(parse_request("STATS"));
    EXPECT_NE(stats.payload.find("recovered_jobs=2"), std::string::npos) << stats.payload;
    EXPECT_NE(stats.payload.find("resubmitted_jobs=1"), std::string::npos) << stats.payload;

    // Determinism contract: the resubmitted run equals a clean one.
    SynthServer reference;
    reference.start();
    const Response r = reference.handle(parse_request(
        "TRAIN chaos-int records=300 sim-seed=5 epochs=2 gan-seed=9"));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(sample_fingerprint(server, "chaos-int"),
              sample_fingerprint(reference, "chaos-int"));
    reference.stop();
    client.quit();
    server.stop();
}

TEST(CrashRecovery, DrainStopsAdmissionThenStops) {
    SynthServer server;
    server.start();
    const std::uint16_t port = server.port();
    auto client = SynthClient::connect("127.0.0.1", port);
    client.ping();
    server.drain(2000);
    EXPECT_FALSE(server.running());
    ClientOptions copts;
    copts.connect_timeout_ms = 500;
    copts.connect_attempts = 1;
    EXPECT_THROW((void)SynthClient::connect("127.0.0.1", port, copts), Error);
}

// ------------------------------------------------ REPLICATE rejection codes

class ReplicateErrors : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        dir_ = new std::string(fresh_dir("replicate"));
        std::filesystem::create_directories(*dir_);
        ServerOptions options;
        options.snapshot_dir = *dir_;
        server_ = new SynthServer(options);
        server_->start();
        const Response r = server_->handle(
            parse_request("TRAIN rep-src records=300 sim-seed=5 epochs=2 gan-seed=9"));
        ASSERT_TRUE(r.ok) << r.error;
        // SAVE writes the exact container REPLICATE carries on the wire.
        auto client = SynthClient::connect("127.0.0.1", server_->port());
        client.save("rep-src", "rep-src.snap");
        client.quit();
        std::ifstream in(*dir_ + "/rep-src.snap", std::ios::binary);
        ASSERT_TRUE(in.good());
        container_ = new std::string(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
        ASSERT_FALSE(container_->empty());
    }
    static void TearDownTestSuite() {
        delete server_;
        server_ = nullptr;
        delete container_;
        container_ = nullptr;
        delete dir_;
        dir_ = nullptr;
    }

    static SynthServer* server_;
    static std::string* container_;
    static std::string* dir_;
};

SynthServer* ReplicateErrors::server_ = nullptr;
std::string* ReplicateErrors::container_ = nullptr;
std::string* ReplicateErrors::dir_ = nullptr;

TEST_F(ReplicateErrors, ValidContainerIsAccepted) {
    auto client = SynthClient::connect("127.0.0.1", server_->port());
    client.replicate("rep-copy", *container_);
    EXPECT_NE(server_->registry().get("rep-copy"), nullptr);
    client.quit();
}

TEST_F(ReplicateErrors, OversizeDeclarationIsCodedPermanent) {
    auto stream = TcpStream::connect("127.0.0.1", server_->port());
    stream.set_recv_timeout(5000);
    stream.write_all("REPLICATE big 999999999999\n");
    const auto line = stream.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(line->rfind("ERR ", 0), 0U) << *line;
    EXPECT_EQ(error_code(line->substr(4)), kBodyTooLargeCode) << *line;
    EXPECT_FALSE(is_retryable_error(line->substr(4)));
}

TEST_F(ReplicateErrors, CorruptPayloadIsChecksumMismatch) {
    std::string corrupt = *container_;
    corrupt.back() = static_cast<char>(corrupt.back() ^ 0x5a);
    auto client = SynthClient::connect("127.0.0.1", server_->port());
    try {
        client.replicate("rep-bad", corrupt);
        FAIL() << "corrupt container must be rejected";
    } catch (const Error& e) {
        std::string_view message = e.what();
        if (message.rfind("server: ", 0) == 0) {
            message.remove_prefix(8);
        }
        EXPECT_EQ(error_code(message), kChecksumMismatchCode) << e.what();
        EXPECT_FALSE(is_retryable_error(message));
    }
    EXPECT_EQ(server_->registry().get("rep-bad"), nullptr);
    client.quit();
}

TEST_F(ReplicateErrors, GarbageBytesAreBadSnapshot) {
    auto client = SynthClient::connect("127.0.0.1", server_->port());
    try {
        client.replicate("rep-junk", "these bytes are not a snapshot container");
        FAIL() << "junk container must be rejected";
    } catch (const Error& e) {
        std::string_view message = e.what();
        if (message.rfind("server: ", 0) == 0) {
            message.remove_prefix(8);
        }
        EXPECT_EQ(error_code(message), kBadSnapshotCode) << e.what();
    }
    client.quit();
}

TEST_F(ReplicateErrors, TruncatedBodyIsShortBody) {
    auto stream = TcpStream::connect("127.0.0.1", server_->port());
    stream.set_recv_timeout(5000);
    stream.write_all("REPLICATE short 100\n");
    stream.write_all("only ten b");  // 10 of the declared 100 bytes
    // Half-close the send side: the server sees EOF with a short body and
    // must answer with the coded rejection, not silently drop the line.
    ASSERT_EQ(::shutdown(stream.fd(), SHUT_WR), 0);
    const auto line = stream.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(line->rfind("ERR ", 0), 0U) << *line;
    EXPECT_EQ(error_code(line->substr(4)), kShortBodyCode) << *line;
    EXPECT_FALSE(is_retryable_error(line->substr(4)));
    EXPECT_EQ(server_->registry().get("short"), nullptr);
}

// -------------------------------------------------------------- FAULT op

TEST(FaultOp, IsAdminGatedAndControlsFailpoints) {
    FailpointGuard guard;
    {
        SynthServer locked;  // enable_failpoints defaults to off
        locked.start();
        const Response denied = locked.handle(parse_request("FAULT registry.evict spec=error"));
        EXPECT_FALSE(denied.ok);
        locked.stop();
    }

    ServerOptions options;
    options.enable_failpoints = true;
    SynthServer server(options);
    server.start();
    auto client = SynthClient::connect("127.0.0.1", server.port());

    Request arm;
    arm.op = Op::fault;
    arm.positional.push_back("registry.evict");
    arm.kv["spec"] = "delay,ms=0";
    (void)client.rpc(arm);
    EXPECT_TRUE(failpoint::armed());

    Request status;
    status.op = Op::fault;
    const Response view = client.rpc(status);
    EXPECT_NE(view.payload.find("registry.evict"), std::string::npos) << view.payload;

    Request unknown = arm;
    unknown.positional[0] = "no.such.site";
    EXPECT_THROW((void)client.rpc(unknown), Error);

    arm.kv["spec"] = "off";
    (void)client.rpc(arm);
    EXPECT_FALSE(failpoint::armed());
    client.quit();
    server.stop();
}

// ------------------------------------------------------- client reconnect

TEST(ClientReconnect, BudgetedReconnectSurvivesServerRestart) {
    ServerOptions options;
    SynthServer first(options);
    first.start();
    const std::uint16_t port = first.port();

    ClientOptions copts;
    copts.connect_timeout_ms = 2000;
    copts.recv_timeout_ms = 5000;
    copts.reconnect_on_reset = true;
    copts.reconnect_attempts = 3;
    copts.reconnect_backoff_ms = 20;
    auto client = SynthClient::connect("127.0.0.1", port, copts);
    client.ping();

    first.stop();
    ServerOptions same_port;
    same_port.port = port;
    SynthServer second(same_port);
    second.start();

    // The pooled socket died with the first server; the budgeted reconnect
    // loop must land the request on the second without surfacing an error.
    client.ping();
    client.quit();
    second.stop();
}

TEST(ClientReconnect, InjectedSendFaultSurfacesWithoutRetry) {
    FailpointGuard guard;
    SynthServer server;
    server.start();
    ClientOptions copts;
    copts.reconnect_on_reset = true;
    copts.reconnect_attempts = 5;
    auto client = SynthClient::connect("127.0.0.1", server.port(), copts);
    client.ping();

    // Injected failpoint errors are permanent, not transport resets: the
    // reconnect budget must NOT be spent retrying them.
    failpoint::configure("socket.send", "error,times=1");
    EXPECT_THROW(client.ping(), Error);
    failpoint::reset_all();
    client.ping();  // the connection itself was never damaged
    client.quit();
    server.stop();
}

// ------------------------------------------------------------ chaos fleet

ClusterConfig chaos_fleet_config(const std::vector<PeerAddress>& addrs,
                                 std::size_t self_index) {
    ClusterConfig cfg;
    cfg.self = addrs[self_index];
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        if (i != self_index) {
            cfg.peers.push_back(addrs[i]);
        }
    }
    cfg.replicas = 2;
    // Probes and anti-entropy run only when the test drives them: the
    // background prober sleeps far past the test's lifetime, so every state
    // transition below is an explicit, deterministic step.
    cfg.probe_interval_ms = 60000;
    cfg.anti_entropy_interval_ms = 0;
    cfg.connect_timeout_ms = 1000;
    cfg.peer_timeout_ms = 30000;
    cfg.rpc_retries = 0;  // failures count immediately, no hidden sleeps
    cfg.breaker.failure_threshold = 2;
    cfg.breaker.open_ms = 60000;  // stays open until a probe closes it
    return cfg;
}

/// First model name whose ring preference list is exactly [owner, replica].
std::string model_placed_on(const ClusterService& cluster, const std::string& owner,
                            const std::string& replica, const std::string& tag) {
    for (int i = 0; i < 8192; ++i) {
        const std::string name = tag + "-" + std::to_string(i);
        const auto pref = cluster.preference(name);
        if (pref.size() == 2 && pref[0] == owner && pref[1] == replica) {
            return name;
        }
    }
    ADD_FAILURE() << "ring never placed a name on [" << owner << ", " << replica << "]";
    return tag + "-unplaced";
}

TEST(ChaosFleet, CrashLoopedMemberReconvergesViaAntiEntropy) {
    const std::string dir = fresh_dir("fleet_member1");
    std::vector<std::unique_ptr<SynthServer>> servers;
    std::vector<PeerAddress> addrs;
    for (std::size_t i = 0; i < 3; ++i) {
        ServerOptions options;
        options.train_workers = 2;
        if (i == 1) {
            options.snapshot_dir = dir;
            options.persist = true;
        }
        servers.push_back(std::make_unique<SynthServer>(options));
        servers[i]->start();
        addrs.push_back(PeerAddress{"127.0.0.1", servers[i]->port()});
    }
    for (std::size_t i = 0; i < 3; ++i) {
        servers[i]->enable_cluster(chaos_fleet_config(addrs, i));
    }
    const std::string node0 = addrs[0].name();
    const std::string node1 = addrs[1].name();
    const std::string node2 = addrs[2].name();

    // One model per role: `survivor` lives on node0, `victim` on the member
    // we crash-loop (node1, the persisting one), `repair` is owned by node0
    // with node1 as its designated replica — the anti-entropy target.
    const std::string survivor = model_placed_on(*servers[0]->cluster(), node0, node2, "sv");
    const std::string victim = model_placed_on(*servers[1]->cluster(), node1, node0, "vc");
    const std::string repair = model_placed_on(*servers[0]->cluster(), node0, node1, "rp");
    for (const auto& [index, model] :
         std::vector<std::pair<std::size_t, std::string>>{{0, survivor}, {1, victim}}) {
        const Response r = servers[index]->handle(parse_request(
            "TRAIN " + model + " records=300 sim-seed=5 epochs=2 gan-seed=9"));
        ASSERT_TRUE(r.ok) << r.error;
    }
    const std::uint64_t victim_golden = sample_fingerprint(*servers[1], victim);

    // ---- crash node1 mid-stream: the client was consuming a forwarded
    // stream of the victim model through node0 when its owner died.
    auto client = SynthClient::connect("127.0.0.1", servers[0]->port());
    bool crashed = false;
    try {
        (void)client.sample_stream(
            victim, 50000, 31,
            [&](const std::string&) {
                if (!crashed) {
                    crashed = true;
                    servers[1]->crash_stop();
                    servers[1].reset();
                }
            },
            /*chunk_rows=*/64);
        FAIL() << "stream must abort when the owner dies mid-flight";
    } catch (const Error&) {
    }
    ASSERT_TRUE(crashed);

    // ---- survivors keep serving their own models.
    servers[0]->cluster()->probe_now();
    servers[2]->cluster()->probe_now();
    EXPECT_FALSE(servers[0]->cluster()->peer_up(node1));
    auto via_node2 = SynthClient::connect("127.0.0.1", servers[2]->port());
    EXPECT_FALSE(via_node2.sample_csv(survivor, 32, 7).empty());
    via_node2.quit();

    // ---- the breaker on node0 opens deterministically after the threshold
    // of failed RPCs toward the dead member, then fails fast with the
    // retryable coded rejection.
    Request ping;
    ping.op = Op::ping;
    for (int i = 0; i < 2; ++i) {
        EXPECT_THROW((void)servers[0]->cluster()->forward(node1, ping), Error);
    }
    try {
        (void)servers[0]->cluster()->forward(node1, ping);
        FAIL() << "third RPC must be rejected by the open breaker";
    } catch (const Error& e) {
        EXPECT_EQ(error_code(e.what()), kBreakerOpenCode) << e.what();
        EXPECT_TRUE(is_retryable_error(e.what()));
    }
    EXPECT_GE(servers[0]->cluster()->breaker_rejections.load(), 1U);
    EXPECT_NE(servers[0]->cluster()->render_stats().find(".breaker=open"),
              std::string::npos);

    // ---- FEDTRAIN while the member is down: the job completes, the live
    // peer gets the snapshot, the dead one is skipped fast (breaker open).
    auto fed = SynthClient::connect("127.0.0.1", servers[0]->port());
    TrainSpec spec;
    spec.records = 300;
    spec.sim_seed = 5;
    spec.epochs = 2;
    spec.gan_seed = 9;
    const std::uint64_t job = fed.fedtrain_async(repair, spec);
    const auto done = fed.wait_for_job(job, 500);
    EXPECT_TRUE(done.at("state") == "done" || done.at("state") == "failed");
    fed.quit();
    ASSERT_NE(servers[0]->registry().get(repair), nullptr);
    EXPECT_NE(servers[2]->registry().get(repair), nullptr)
        << "publish must still reach live peers";

    // ---- crash-loop closes: restart node1 on its old port, recovering the
    // persisted registry from disk.
    ServerOptions revived;
    revived.train_workers = 2;
    revived.snapshot_dir = dir;
    revived.recover = true;
    revived.port = addrs[1].port;
    servers[1] = std::make_unique<SynthServer>(revived);
    servers[1]->start();
    servers[1]->enable_cluster(chaos_fleet_config(addrs, 1));
    ASSERT_NE(servers[1]->registry().get(victim), nullptr)
        << "restart must recover the registry from the manifest";
    EXPECT_EQ(sample_fingerprint(*servers[1], victim), victim_golden);

    // ---- a probe round heals node0's view: peer up again, breaker closed.
    servers[0]->cluster()->probe_now();
    EXPECT_TRUE(servers[0]->cluster()->peer_up(node1));
    EXPECT_NE(servers[0]->cluster()->render_stats().find(".breaker=closed"),
              std::string::npos);

    // ---- anti-entropy: node1 is the designated replica of `repair` but
    // missed its FEDTRAIN publish while dead; one round pulls it across and
    // the digests converge.
    EXPECT_EQ(servers[1]->registry().get(repair), nullptr);
    EXPECT_GE(servers[1]->anti_entropy_now(), 1U);
    const auto repaired = servers[1]->registry().get(repair);
    ASSERT_NE(repaired, nullptr);
    const auto source = servers[0]->registry().get(repair);
    ASSERT_NE(source, nullptr);
    EXPECT_EQ(repaired->revision, source->revision);
    EXPECT_EQ(repaired->checksum, source->checksum);
    // A second round finds nothing left to repair — convergence.
    EXPECT_EQ(servers[1]->anti_entropy_now(), 0U);

    const Response stats = servers[1]->handle(parse_request("STATS"));
    EXPECT_NE(stats.payload.find("repairs=1"), std::string::npos) << stats.payload;
    EXPECT_NE(stats.payload.find("recovered_models="), std::string::npos) << stats.payload;

    // The repaired copy serves byte-identical samples to the source.
    EXPECT_EQ(sample_fingerprint(*servers[1], repair), sample_fingerprint(*servers[0], repair));

    client.quit();
    for (auto& server : servers) {
        if (server != nullptr) {
            server->stop();
        }
    }
}

TEST(ChaosFleet, InjectedRpcFaultsTripTheBreakerDeterministically) {
    FailpointGuard guard;
    std::vector<std::unique_ptr<SynthServer>> servers;
    std::vector<PeerAddress> addrs;
    for (std::size_t i = 0; i < 2; ++i) {
        servers.push_back(std::make_unique<SynthServer>());
        servers[i]->start();
        addrs.push_back(PeerAddress{"127.0.0.1", servers[i]->port()});
    }
    for (std::size_t i = 0; i < 2; ++i) {
        servers[i]->enable_cluster(chaos_fleet_config(addrs, i));
    }
    const std::string peer = addrs[1].name();
    // Let the prober's initial round (fired by enable_cluster) finish before
    // arming, so it cannot consume the injection budget.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    servers[0]->cluster()->probe_now();

    // cluster.rpc error injections are classified permanent, so each one
    // consumes no retry budget and counts straight toward the threshold (2).
    failpoint::configure("cluster.rpc", "error,times=2");
    Request ping;
    ping.op = Op::ping;
    EXPECT_THROW((void)servers[0]->cluster()->forward(peer, ping), Error);
    EXPECT_THROW((void)servers[0]->cluster()->forward(peer, ping), Error);
    EXPECT_EQ(failpoint::hits("cluster.rpc"), 2U);
    try {
        (void)servers[0]->cluster()->forward(peer, ping);
        FAIL() << "breaker must be open after two injected failures";
    } catch (const Error& e) {
        EXPECT_EQ(error_code(e.what()), kBreakerOpenCode) << e.what();
    }
    EXPECT_EQ(servers[0]->cluster()->rpc_retries.load(), 0U)
        << "permanent injections must not burn the retry budget";

    // The peer was healthy all along: one probe (bypassing admission)
    // records a success and snaps the breaker closed again.
    failpoint::reset_all();
    servers[0]->cluster()->probe_now();
    const Response relayed = servers[0]->cluster()->forward(peer, ping);
    EXPECT_TRUE(relayed.ok) << relayed.error;

    for (auto& server : servers) {
        server->stop();
    }
}

// ------------------------------------------------- membership under churn

/// Binds an ephemeral port, releases it, and returns the number, so a ring
/// that includes a not-yet-started member can be computed up front.
std::uint16_t chaos_reserve_port() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    KINET_CHECK(fd >= 0, "socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    KINET_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                "bind() failed");
    socklen_t len = sizeof(addr);
    KINET_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
                "getsockname() failed");
    ::close(fd);
    return ntohs(addr.sin_port);
}

TEST(ChaosMembership, JoinUnderLoadServesEveryRequestAndMovesOwnership) {
    std::vector<std::unique_ptr<SynthServer>> servers;
    std::vector<PeerAddress> addrs;
    for (std::size_t i = 0; i < 3; ++i) {
        ServerOptions options;
        options.train_workers = 2;
        servers.push_back(std::make_unique<SynthServer>(options));
        servers[i]->start();
        addrs.push_back(PeerAddress{"127.0.0.1", servers[i]->port()});
    }
    for (std::size_t i = 0; i < 3; ++i) {
        servers[i]->enable_cluster(chaos_fleet_config(addrs, i));
    }
    const PeerAddress joiner_addr{"127.0.0.1", chaos_reserve_port()};

    // Two models chosen against the pre- and post-join rings: `stable`
    // never changes owner, `moved` transfers to the joiner.  The load runs
    // against `stable` through node0 for the whole join window.
    std::vector<std::string> new_nodes;
    for (const auto& addr : addrs) {
        new_nodes.push_back(addr.name());
    }
    new_nodes.push_back(joiner_addr.name());
    const HashRing new_ring(new_nodes, ClusterConfig{}.virtual_nodes);
    const auto& old_cluster = *servers[0]->cluster();
    std::string stable;
    std::string moved;
    for (int i = 0; i < 8192 && (stable.empty() || moved.empty()); ++i) {
        const std::string name = "churn-" + std::to_string(i);
        const std::string old_owner = old_cluster.owner_of(name);
        const std::string new_owner = new_ring.owner_of(name);
        if (stable.empty() && old_owner == new_owner) {
            stable = name;
        }
        if (moved.empty() && new_owner == joiner_addr.name()) {
            moved = name;
        }
    }
    ASSERT_FALSE(stable.empty());
    ASSERT_FALSE(moved.empty());
    for (const std::string& model : {stable, moved}) {
        for (auto& server : servers) {
            if (server->cluster()->self_name() == old_cluster.owner_of(model)) {
                const Response r = server->handle(parse_request(
                    "TRAIN " + model + " records=300 sim-seed=5 epochs=2 gan-seed=9"));
                ASSERT_TRUE(r.ok) << r.error;
            }
        }
    }
    const std::uint64_t stable_golden = sample_fingerprint(*servers[0], stable);
    const std::uint64_t moved_golden = sample_fingerprint(*servers[0], moved);

    // Sustained SAMPLE load through node0 while the membership changes
    // under it.  Retryable rejections are absorbed by the client loop; any
    // *permanent* error during the join is a correctness failure.
    std::atomic<bool> stop_load{false};
    std::atomic<std::size_t> served{0};
    std::atomic<std::size_t> permanent{0};
    std::thread load([&] {
        try {
            ClientOptions copts;
            copts.reconnect_on_reset = true;
            copts.reconnect_attempts = 5;
            copts.reconnect_backoff_ms = 10;
            auto client = SynthClient::connect("127.0.0.1", addrs[0].port, copts);
            while (!stop_load.load()) {
                try {
                    if (client.sample_csv(stable, 16, 3).empty()) {
                        permanent.fetch_add(1);
                    } else {
                        served.fetch_add(1);
                    }
                } catch (const Error& e) {
                    std::string_view message = e.what();
                    if (message.rfind("server: ", 0) == 0) {
                        message.remove_prefix(8);
                    }
                    if (!is_retryable_error(message)) {
                        permanent.fetch_add(1);
                    }
                }
            }
            client.quit();
        } catch (const Error&) {
            permanent.fetch_add(1);
        }
    });

    // The join happens in the middle of the load window.
    while (served.load() < 5) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ServerOptions joiner_options;
    joiner_options.train_workers = 2;
    joiner_options.port = joiner_addr.port;
    SynthServer joiner(joiner_options);
    joiner.start();
    ClusterConfig tuning = chaos_fleet_config({joiner_addr}, 0);
    joiner.join_fleet(tuning, addrs[0]);
    // Deterministic dissemination: explicit probe rounds walk the epoch out
    // to every original member.
    for (int round = 0; round < 3; ++round) {
        for (auto& server : servers) {
            server->cluster()->probe_now();
        }
    }
    const std::size_t served_before_stop = served.load();
    while (served.load() < served_before_stop + 5) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    stop_load.store(true);
    load.join();

    EXPECT_EQ(permanent.load(), 0U)
        << "join must never surface a permanent error to clients";
    EXPECT_GE(served.load(), 10U);

    // Ownership of `moved` transferred, its snapshot travelled with it, and
    // the new owner serves bit-exact seeded samples.
    for (auto& server : servers) {
        EXPECT_EQ(server->cluster()->owner_of(moved), joiner_addr.name());
        EXPECT_EQ(server->cluster()->epoch(), joiner.cluster()->epoch());
    }
    ASSERT_NE(joiner.registry().get(moved), nullptr);
    EXPECT_EQ(sample_fingerprint(joiner, moved), moved_golden);
    EXPECT_EQ(sample_fingerprint(*servers[0], stable), stable_golden);
    EXPECT_GE(joiner.cluster()->handoff_snapshots.load(), 1U);

    joiner.stop();
    for (auto& server : servers) {
        server->stop();
    }
}

TEST(ChaosMembership, OwnerKilledMidHandoffIsRepairedByAntiEntropy) {
    FailpointGuard guard;
    std::vector<std::unique_ptr<SynthServer>> servers;
    std::vector<PeerAddress> addrs;
    for (std::size_t i = 0; i < 3; ++i) {
        ServerOptions options;
        options.train_workers = 2;
        servers.push_back(std::make_unique<SynthServer>(options));
        servers[i]->start();
        addrs.push_back(PeerAddress{"127.0.0.1", servers[i]->port()});
    }
    for (std::size_t i = 0; i < 3; ++i) {
        servers[i]->enable_cluster(chaos_fleet_config(addrs, i));
    }
    const PeerAddress joiner_addr{"127.0.0.1", chaos_reserve_port()};

    // A model owned by node1 today, with node2 as its designated replica,
    // that the post-join ring hands to the joiner.  After node1 is killed,
    // node2's replica copy is the surviving anti-entropy source — and since
    // dissemination is parked, node2 never adopts the new epoch during the
    // test, so no background rebalance can push the snapshot and race the
    // explicit repair below.
    std::vector<std::string> new_nodes;
    for (const auto& addr : addrs) {
        new_nodes.push_back(addr.name());
    }
    new_nodes.push_back(joiner_addr.name());
    const HashRing new_ring(new_nodes, ClusterConfig{}.virtual_nodes);
    std::string moved;
    for (int i = 0; i < 8192 && moved.empty(); ++i) {
        const std::string name = "handoff-" + std::to_string(i);
        const auto old_pref = servers[0]->cluster()->preference(name);
        if (old_pref.size() == 2 && old_pref[0] == addrs[1].name() &&
            old_pref[1] == addrs[2].name() &&
            new_ring.owner_of(name) == joiner_addr.name()) {
            moved = name;
        }
    }
    ASSERT_FALSE(moved.empty());
    const Response trained = servers[1]->handle(parse_request(
        "TRAIN " + moved + " records=300 sim-seed=5 epochs=2 gan-seed=9"));
    ASSERT_TRUE(trained.ok) << trained.error;
    // One anti-entropy round seeds the replica copy on node2.
    EXPECT_GE(servers[2]->anti_entropy_now(), 1U);
    ASSERT_NE(servers[2]->registry().get(moved), nullptr);
    const std::uint64_t golden = sample_fingerprint(*servers[1], moved);

    // Sever every snapshot handoff for the whole join window — the
    // rebalancer keeps retrying on each epoch change and keeps failing —
    // then kill the old owner -9.  The transfer is torn on both ends.
    failpoint::configure("cluster.handoff", "error");
    ServerOptions joiner_options;
    joiner_options.train_workers = 2;
    joiner_options.port = joiner_addr.port;
    SynthServer joiner(joiner_options);
    joiner.start();
    ClusterConfig tuning = chaos_fleet_config({joiner_addr}, 0);
    joiner.join_fleet(tuning, addrs[0]);
    EXPECT_EQ(joiner.registry().get(moved), nullptr)
        << "the severed handoff must not have delivered the snapshot";
    EXPECT_GE(joiner.cluster()->handoff_failures.load(), 1U);
    servers[1]->crash_stop();
    servers[1].reset();

    // Epoch-aware anti-entropy completes the move: the joiner owns `moved`
    // under the adopted epoch, sees it in node2's digest, and pulls the
    // surviving replica copy — bit-exact.  The handoff failpoint stays
    // armed (the guard disarms it at scope exit): anti-entropy uses its own
    // pull path, which proves the repair is not a lucky rebalance retry.
    EXPECT_GE(joiner.anti_entropy_now(), 1U);
    ASSERT_NE(joiner.registry().get(moved), nullptr)
        << "anti-entropy must finish the interrupted handoff";
    EXPECT_EQ(sample_fingerprint(joiner, moved), golden);
    EXPECT_EQ(sample_fingerprint(*servers[2], moved), golden);
    // Convergence: a second round has nothing left to repair.
    EXPECT_EQ(joiner.anti_entropy_now(), 0U);

    joiner.stop();
    for (auto& server : servers) {
        if (server != nullptr) {
            server->stop();
        }
    }
}

TEST(ChaosMembership, LeaveAndRejoinKeepsTheEpochStrictlyMonotonic) {
    std::vector<std::unique_ptr<SynthServer>> servers;
    std::vector<PeerAddress> addrs;
    for (std::size_t i = 0; i < 3; ++i) {
        ServerOptions options;
        if (i == 2) {
            options.port = chaos_reserve_port();  // the churning member
        }
        servers.push_back(std::make_unique<SynthServer>(options));
        servers[i]->start();
        addrs.push_back(PeerAddress{"127.0.0.1", servers[i]->port()});
    }
    for (std::size_t i = 0; i < 3; ++i) {
        servers[i]->enable_cluster(chaos_fleet_config(addrs, i));
    }
    // One explicit probe round first: dissemination from a draining member
    // rides the pooled per-peer connections that continuous probing keeps
    // warm (a draining listener rejects *new* connections).
    for (auto& server : servers) {
        server->cluster()->probe_now();
    }
    std::vector<std::uint64_t> epochs;
    epochs.push_back(servers[0]->cluster()->epoch());

    // LEAVE: node2 hands off, disseminates its final view, and drains.
    Request leave;
    leave.op = Op::leave;
    leave.model = addrs[2].name();
    const Response left = servers[2]->handle(leave);
    ASSERT_TRUE(left.ok) << left.error;
    for (int round = 0; round < 3; ++round) {
        servers[0]->cluster()->probe_now();
        servers[1]->cluster()->probe_now();
    }
    epochs.push_back(servers[0]->cluster()->epoch());
    EXPECT_EQ(servers[0]->cluster()->view().members.size(), 2U);
    EXPECT_EQ(servers[0]->cluster()->epoch(), servers[1]->cluster()->epoch());
    servers[2]->stop();
    servers[2].reset();

    // Rejoin under the same identity (same host:port).  The survivors'
    // epoch keeps climbing — the re-admitted member must never be confused
    // with its previous incarnation.
    ServerOptions rejoin_options;
    rejoin_options.port = addrs[2].port;
    servers[2] = std::make_unique<SynthServer>(rejoin_options);
    servers[2]->start();
    ClusterConfig tuning = chaos_fleet_config({addrs[2]}, 0);
    servers[2]->join_fleet(tuning, addrs[0]);
    for (int round = 0; round < 3; ++round) {
        for (auto& server : servers) {
            server->cluster()->probe_now();
        }
    }
    epochs.push_back(servers[0]->cluster()->epoch());
    for (auto& server : servers) {
        EXPECT_EQ(server->cluster()->epoch(), epochs.back());
        EXPECT_EQ(server->cluster()->view().members.size(), 3U);
        EXPECT_EQ(server->cluster()->view().find(addrs[2].name())->state,
                  MemberState::active);
    }
    for (std::size_t i = 1; i < epochs.size(); ++i) {
        EXPECT_GT(epochs[i], epochs[i - 1]) << "epochs must be strictly monotonic";
    }

    for (auto& server : servers) {
        server->stop();
    }
}

}  // namespace
