// Snapshot-reader fuzz/property tests — the model snapshot is the service
// layer's second attack surface after the protocol parser: LOAD hands
// read_snapshot bytes that came off disk (or a future replication wire)
// and must never crash on them.
//
// Deterministic pseudo-random fuzzing over four layers:
//   * raw byte soup (no structure at all),
//   * header-field mutations (magic/version/length/checksum),
//   * truncation at every header boundary and swept through the payload,
//   * payload mutations with the checksum *re-fixed*, so the corruption
//     reaches KiNetGan::load and every nested reader below it.
// The only acceptable failure mode is kinet::Error; anything else
// (crash, bad_alloc from a hostile length, non-Error exception) fails the
// suite.  A mutated payload that still loads is fine — flipping a weight
// bit is not detectable — but the loaded model must then survive a
// sample() call under the same rules.
#include <gtest/gtest.h>

#include <cstring>
#include <new>
#include <string>

#include "src/common/bytes.hpp"
#include "src/common/check.hpp"
#include "src/common/csv.hpp"
#include "src/common/rng.hpp"
#include "src/core/kinetgan.hpp"
#include "src/netsim/lab_simulator.hpp"
#include "src/service/snapshot.hpp"

namespace {

using kinet::Rng;
using kinet::core::KiNetGan;
using kinet::core::KiNetGanOptions;

/// One small trained model, shared by every fuzz case (training it is the
/// expensive part; the fuzz target is the reader, not the trainer).
const std::string& valid_snapshot() {
    static const std::string blob = [] {
        KiNetGanOptions opts;
        opts.gan.epochs = 1;
        opts.gan.batch_size = 32;
        opts.gan.hidden_dim = 16;
        opts.gan.noise_dim = 8;
        opts.gan.seed = 11;
        opts.transformer.max_modes = 2;
        kinet::netsim::LabSimOptions sim;
        sim.records = 200;
        sim.seed = 5;
        const auto table = kinet::netsim::LabTrafficSimulator(sim).generate();
        const auto kg = kinet::kg::NetworkKg::build_lab();
        KiNetGan model(kg.make_oracle(), kinet::netsim::lab_conditional_columns(), opts);
        model.fit(table);
        return kinet::service::write_snapshot(model);
    }();
    return blob;
}

/// Rewrites the container header so `payload` (possibly mutated) carries a
/// *valid* length and checksum again — the way past the integrity check
/// and into the structured readers.
std::string frame_with_fixed_checksum(const std::string& payload) {
    kinet::bytes::Writer out;
    out.raw(kinet::service::kSnapshotMagic);
    out.u32(kinet::service::kSnapshotVersion);
    out.u64(payload.size());
    out.u64(kinet::bytes::fnv1a(payload));
    out.raw(payload);
    return out.take();
}

/// Feeds one candidate container to the reader (and, if it loads, to a
/// sample call).  Only kinet::Error may escape.
void expect_no_crash(const std::string& blob) {
    try {
        auto model = kinet::service::read_snapshot(blob);
        // Loaded despite the fuzzing: the model must still be usable (or
        // fail cleanly) — corrupt state must not surface as UB later.
        (void)model->sample_seeded(8, 99);
    } catch (const kinet::Error&) {
        // Clean rejection is the expected path.
    }
}

TEST(SnapshotFuzz, RandomByteSoupNeverCrashes) {
    Rng rng(0x50a9f001);
    for (int iter = 0; iter < 2000; ++iter) {
        const auto length = static_cast<std::size_t>(rng.randint(0, 160));
        std::string blob;
        blob.reserve(length);
        for (std::size_t i = 0; i < length; ++i) {
            blob.push_back(static_cast<char>(rng.randint(0, 255)));
        }
        expect_no_crash(blob);
    }
}

TEST(SnapshotFuzz, HeaderFieldMutationsAreRejectedCleanly) {
    const std::string& good = valid_snapshot();
    Rng rng(0x50a9f002);
    // Every byte of the 28-byte header, several mutations each.
    for (std::size_t pos = 0; pos < 28; ++pos) {
        for (int m = 0; m < 8; ++m) {
            std::string blob = good;
            blob[pos] = static_cast<char>(blob[pos] ^ (1 << (m % 8)));
            expect_no_crash(blob);
        }
    }
    // Extreme declared lengths (field at bytes 12-19).
    for (const std::uint64_t decl :
         {std::uint64_t{0}, std::uint64_t{1} << 32, ~std::uint64_t{0}}) {
        std::string blob = good;
        std::memcpy(blob.data() + 12, &decl, sizeof(decl));
        expect_no_crash(blob);
    }
}

TEST(SnapshotFuzz, TruncationAtEverySectionBoundaryIsRejected) {
    const std::string& good = valid_snapshot();
    // Header boundaries: after magic, version, length, checksum (and every
    // byte in between — the header is small enough to sweep completely).
    for (std::size_t cut = 0; cut < 28; ++cut) {
        EXPECT_THROW((void)kinet::service::read_snapshot(good.substr(0, cut)), kinet::Error)
            << "header truncation at " << cut << " accepted";
    }
    // Payload cuts: a fine sweep near the start (schema/options section)
    // and a coarse sweep through the weights.  With the length field
    // rewritten to match, the cut lands on the *payload* readers instead
    // of the container length check.
    const std::string payload = good.substr(28);
    for (std::size_t cut = 0; cut < payload.size(); cut += (cut < 512 ? 7 : 997)) {
        const std::string sliced = payload.substr(0, cut);
        EXPECT_THROW((void)kinet::service::read_snapshot(good.substr(0, 28 + cut)), kinet::Error)
            << "container truncation at payload byte " << cut << " accepted";
        expect_no_crash(frame_with_fixed_checksum(sliced));
    }
}

TEST(SnapshotFuzz, ChecksumFixedPayloadMutationsNeverCrash) {
    const std::string payload = valid_snapshot().substr(28);
    Rng rng(0x50a9f003);
    for (int iter = 0; iter < 400; ++iter) {
        std::string mutated = payload;
        // 1-4 mutations: bit flips, byte overwrites, and 8-byte length/
        // dimension stomps (the high-leverage corruption for readers that
        // trust counts).
        const int edits = 1 + static_cast<int>(rng.randint(0, 3));
        for (int e = 0; e < edits; ++e) {
            const auto pos = static_cast<std::size_t>(
                rng.randint(0, static_cast<std::int64_t>(mutated.size()) - 1));
            switch (rng.randint(0, 2)) {
            case 0:
                mutated[pos] = static_cast<char>(mutated[pos] ^
                                                 (1 << rng.randint(0, 7)));
                break;
            case 1:
                mutated[pos] = static_cast<char>(rng.randint(0, 255));
                break;
            default: {
                const std::uint64_t stomp =
                    rng.bernoulli(0.5) ? ~std::uint64_t{0}
                                       : static_cast<std::uint64_t>(rng.randint(0, 1 << 30));
                const std::size_t n = std::min(sizeof(stomp), mutated.size() - pos);
                std::memcpy(mutated.data() + pos, &stomp, n);
                break;
            }
            }
        }
        expect_no_crash(frame_with_fixed_checksum(mutated));
    }
}

TEST(SnapshotFuzz, TrailingGarbageAfterPayloadIsRejected) {
    const std::string payload = valid_snapshot().substr(28);
    expect_no_crash(frame_with_fixed_checksum(payload + std::string(16, '\x7f')));
    EXPECT_THROW(
        (void)kinet::service::read_snapshot(frame_with_fixed_checksum(payload + "x")),
        kinet::Error);
}

// ---------------------------------------------------- differential fuzz
//
// Serialization must be a *canonical* function of the model state:
// save -> load -> save over randomized model shapes is byte-identical.
// The fleet's REPLICATE/FETCH round-trips and snapshot checksum dedup
// lean on this — a replica that re-serializes differently would look like
// divergent state to any byte-level comparison.
TEST(SnapshotDifferentialFuzz, SaveLoadSaveIsByteIdenticalAcrossRandomModels) {
    Rng rng(0x50a9f004);
    for (int iter = 0; iter < 6; ++iter) {
        KiNetGanOptions opts;
        opts.gan.epochs = 1;
        opts.gan.batch_size = 16 << rng.randint(0, 2);
        opts.gan.hidden_dim = 8 << rng.randint(0, 2);
        opts.gan.noise_dim = 4 << rng.randint(0, 2);
        opts.gan.seed = static_cast<std::uint64_t>(rng.randint(1, 1 << 20));
        opts.transformer.max_modes = 1 + static_cast<std::size_t>(rng.randint(0, 2));
        kinet::netsim::LabSimOptions sim;
        sim.records = 120 + static_cast<std::size_t>(rng.randint(0, 120));
        sim.seed = static_cast<std::uint64_t>(rng.randint(1, 1 << 20));
        const auto table = kinet::netsim::LabTrafficSimulator(sim).generate();
        const auto kg = kinet::kg::NetworkKg::build_lab();
        KiNetGan model(kg.make_oracle(), kinet::netsim::lab_conditional_columns(), opts);
        model.fit(table);

        const std::string first = kinet::service::write_snapshot(model);
        auto loaded = kinet::service::read_snapshot(first);
        const std::string second = kinet::service::write_snapshot(*loaded);
        ASSERT_EQ(first.size(), second.size()) << "iter " << iter;
        ASSERT_TRUE(first == second)
            << "iter " << iter << ": re-serialization diverged at byte "
            << [&] {
                   std::size_t i = 0;
                   while (i < first.size() && first[i] == second[i]) {
                       ++i;
                   }
                   return i;
               }();
        // And a second generation loads and re-serializes identically too
        // (no hidden state accumulates across the load path).
        auto reloaded = kinet::service::read_snapshot(second);
        EXPECT_TRUE(kinet::service::write_snapshot(*reloaded) == first) << "iter " << iter;
        // Behavioural check on top of the byte check: the restored model
        // draws the same rows for the same seed.
        const auto a = kinet::csv::serialize(model.sample_seeded(32, 77).to_csv());
        const auto b = kinet::csv::serialize(loaded->sample_seeded(32, 77).to_csv());
        EXPECT_TRUE(a == b) << "iter " << iter << ": restored model diverged";
    }
}

TEST(SnapshotFuzz, ValidSnapshotStillLoadsAfterFuzzSuite) {
    // Guard against the fixture itself being corrupted by any test above.
    auto model = kinet::service::read_snapshot(valid_snapshot());
    EXPECT_EQ(model->sample_seeded(16, 3).rows(), 16U);
}

}  // namespace
