// Round-trip and structural tests for the table transformers.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.hpp"
#include "src/data/transformer.hpp"

namespace {

using kinet::Rng;
using namespace kinet::data;  // NOLINT

Table mixed_table(std::size_t rows, Rng& rng) {
    Table t({
        ColumnMeta::categorical_column("proto", {"tcp", "udp", "icmp"}),
        ColumnMeta::continuous_column("bytes"),
        ColumnMeta::continuous_column("duration"),
        ColumnMeta::categorical_column("label", {"benign", "attack"}),
    });
    for (std::size_t r = 0; r < rows; ++r) {
        t.append_row({static_cast<float>(rng.randint(0, 2)),
                      static_cast<float>(rng.bernoulli(0.5) ? rng.normal(100.0, 10.0)
                                                            : rng.normal(5000.0, 300.0)),
                      static_cast<float>(rng.lognormal(2.0, 0.4)),
                      static_cast<float>(rng.bernoulli(0.2) ? 1 : 0)});
    }
    return t;
}

TEST(TableTransformer, SpanLayoutIsContiguousAndComplete) {
    Rng rng(500);
    const Table t = mixed_table(400, rng);
    TableTransformer tf;
    tf.fit(t, TransformerOptions{}, rng);

    std::size_t expected_offset = 0;
    for (const auto& span : tf.spans()) {
        EXPECT_EQ(span.offset, expected_offset);
        expected_offset += span.width;
    }
    EXPECT_EQ(expected_offset, tf.output_width());
    // 2 categorical one-hots + 2 x (alpha + modes).
    EXPECT_EQ(tf.spans().size(), 6U);
}

TEST(TableTransformer, TransformedRowsAreValidEncodings) {
    Rng rng(501);
    const Table t = mixed_table(300, rng);
    TableTransformer tf;
    tf.fit(t, TransformerOptions{}, rng);
    const auto enc = tf.transform(t, rng);
    EXPECT_EQ(enc.rows(), t.rows());
    EXPECT_EQ(enc.cols(), tf.output_width());

    for (const auto& span : tf.spans()) {
        for (std::size_t r = 0; r < enc.rows(); ++r) {
            if (span.kind == SpanKind::continuous_alpha) {
                EXPECT_GE(enc(r, span.offset), -1.0F);
                EXPECT_LE(enc(r, span.offset), 1.0F);
            } else {
                float total = 0.0F;
                for (std::size_t j = 0; j < span.width; ++j) {
                    const float v = enc(r, span.offset + j);
                    EXPECT_TRUE(v == 0.0F || v == 1.0F);
                    total += v;
                }
                EXPECT_FLOAT_EQ(total, 1.0F);  // exactly one hot
            }
        }
    }
}

TEST(TableTransformer, RoundTripRecoversCategoriesExactly) {
    Rng rng(502);
    const Table t = mixed_table(300, rng);
    TableTransformer tf;
    tf.fit(t, TransformerOptions{}, rng);
    const Table back = tf.inverse(tf.transform(t, rng));
    ASSERT_EQ(back.rows(), t.rows());
    for (std::size_t r = 0; r < t.rows(); ++r) {
        EXPECT_EQ(back.category_at(r, 0), t.category_at(r, 0));
        EXPECT_EQ(back.category_at(r, 3), t.category_at(r, 3));
    }
}

TEST(TableTransformer, RoundTripRecoversContinuousApproximately) {
    Rng rng(503);
    const Table t = mixed_table(500, rng);
    TableTransformer tf;
    TransformerOptions opts;
    opts.sample_mode_assignment = false;  // deterministic for tight bounds
    tf.fit(t, opts, rng);
    const Table back = tf.inverse(tf.transform(t, rng));
    double rel_err = 0.0;
    for (std::size_t r = 0; r < t.rows(); ++r) {
        rel_err += std::abs(back.value(r, 1) - t.value(r, 1)) /
                   std::max(1.0F, std::abs(t.value(r, 1)));
    }
    rel_err /= static_cast<double>(t.rows());
    EXPECT_LT(rel_err, 0.05);  // alpha clamping loses only distribution tails
}

TEST(TableTransformer, CategorySpanLookup) {
    Rng rng(504);
    const Table t = mixed_table(100, rng);
    TableTransformer tf;
    tf.fit(t, TransformerOptions{}, rng);
    const auto& span = tf.category_span(0);
    EXPECT_EQ(span.width, 3U);
    EXPECT_EQ(span.kind, SpanKind::category_onehot);
    EXPECT_THROW((void)tf.category_span(1), kinet::Error);  // continuous
}

TEST(TableTransformer, RejectsUseBeforeFit) {
    Rng rng(505);
    TableTransformer tf;
    const Table t = mixed_table(10, rng);
    EXPECT_THROW((void)tf.transform(t, rng), kinet::Error);
    EXPECT_THROW((void)tf.inverse(kinet::tensor::Matrix(1, 1)), kinet::Error);
}

TEST(MinMaxTransformer, MapsIntoUnitBoxAndBack) {
    Rng rng(506);
    const Table t = mixed_table(200, rng);
    MinMaxTransformer mm;
    mm.fit(t);
    const auto enc = mm.transform(t);
    for (float v : enc.data()) {
        EXPECT_GE(v, -1.0F - 1e-5F);
        EXPECT_LE(v, 1.0F + 1e-5F);
    }
    const Table back = mm.inverse(enc);
    for (std::size_t r = 0; r < t.rows(); ++r) {
        EXPECT_EQ(back.category_at(r, 0), t.category_at(r, 0));  // ordinals round-trip
        EXPECT_NEAR(back.value(r, 1), t.value(r, 1), 1.0F);
    }
}

TEST(MinMaxTransformer, ClampsOutOfRangeDecodes) {
    Rng rng(507);
    const Table t = mixed_table(50, rng);
    MinMaxTransformer mm;
    mm.fit(t);
    kinet::tensor::Matrix wild(1, mm.output_width(), 99.0F);
    const Table back = mm.inverse(wild);
    EXPECT_EQ(back.rows(), 1U);
    EXPECT_LT(back.category_at(0, 0), 3U);  // clamped into the category range
}

// Property sweep: round-trip holds across transformer mode budgets.
class TransformerModes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TransformerModes, CategoricalRoundTripExactForAnyModeBudget) {
    Rng rng(508 + GetParam());
    const Table t = mixed_table(200, rng);
    TableTransformer tf;
    TransformerOptions opts;
    opts.max_modes = GetParam();
    tf.fit(t, opts, rng);
    const Table back = tf.inverse(tf.transform(t, rng));
    for (std::size_t r = 0; r < t.rows(); ++r) {
        EXPECT_EQ(back.category_at(r, 0), t.category_at(r, 0));
        EXPECT_EQ(back.category_at(r, 3), t.category_at(r, 3));
        EXPECT_TRUE(std::isfinite(back.value(r, 1)));
        EXPECT_TRUE(std::isfinite(back.value(r, 2)));
    }
}

INSTANTIATE_TEST_SUITE_P(ModeBudgets, TransformerModes, ::testing::Values(1U, 2U, 3U, 5U, 8U));

}  // namespace
