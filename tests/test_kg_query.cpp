// Tests for conjunctive pattern queries.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/kg/query.hpp"

namespace {

using namespace kinet::kg;  // NOLINT

TripleStore family_store() {
    TripleStore s;
    s.add("alice", "parentOf", "bob");
    s.add("alice", "parentOf", "carol");
    s.add("bob", "parentOf", "dave");
    s.add("carol", "parentOf", "erin");
    s.add("dave", "likes", "chess");
    s.add("erin", "likes", "go");
    return s;
}

TEST(Query, SingleVariableBinding) {
    const auto store = family_store();
    Query q;
    q.where("alice", "parentOf", "?child");
    const auto solutions = q.solve(store);
    EXPECT_EQ(solutions.size(), 2U);
    std::vector<std::string> children;
    for (const auto& b : solutions) {
        children.push_back(store.symbols().name(b.at("?child")));
    }
    std::sort(children.begin(), children.end());
    EXPECT_EQ(children[0], "bob");
    EXPECT_EQ(children[1], "carol");
}

TEST(Query, JoinAcrossPatterns) {
    const auto store = family_store();
    Query q;
    q.where("?x", "parentOf", "?y").where("?y", "parentOf", "?z");
    const auto solutions = q.solve(store);  // grandparent chains
    EXPECT_EQ(solutions.size(), 2U);
    for (const auto& b : solutions) {
        EXPECT_EQ(store.symbols().name(b.at("?x")), "alice");
    }
}

TEST(Query, ThreeWayJoinWithLeafConstraint) {
    const auto store = family_store();
    Query q;
    q.where("?g", "parentOf", "?p")
        .where("?p", "parentOf", "?c")
        .where("?c", "likes", "chess");
    const auto solutions = q.solve(store);
    ASSERT_EQ(solutions.size(), 1U);
    EXPECT_EQ(store.symbols().name(solutions[0].at("?p")), "bob");
    EXPECT_EQ(store.symbols().name(solutions[0].at("?c")), "dave");
}

TEST(Query, RepeatedVariableMustBindConsistently) {
    TripleStore s;
    s.add("a", "knows", "a");  // self loop
    s.add("a", "knows", "b");
    Query q;
    q.where("?x", "knows", "?x");
    const auto solutions = q.solve(s);
    ASSERT_EQ(solutions.size(), 1U);
    EXPECT_EQ(s.symbols().name(solutions[0].at("?x")), "a");
}

TEST(Query, UnknownConstantYieldsNoSolutions) {
    const auto store = family_store();
    Query q;
    q.where("nobody", "parentOf", "?x");
    EXPECT_TRUE(q.solve(store).empty());
}

TEST(Query, UnsatisfiableJoinYieldsNoSolutions) {
    const auto store = family_store();
    Query q;
    q.where("?x", "likes", "chess").where("?x", "parentOf", "?y");
    EXPECT_TRUE(q.solve(store).empty());  // dave has no children
}

TEST(Query, EmptyQueryIsRejected) {
    const auto store = family_store();
    const Query q;
    EXPECT_THROW((void)q.solve(store), kinet::Error);
}

TEST(Query, VariablePredicates) {
    const auto store = family_store();
    Query q;
    q.where("dave", "?p", "?o");
    const auto solutions = q.solve(store);
    ASSERT_EQ(solutions.size(), 1U);
    EXPECT_EQ(store.symbols().name(solutions[0].at("?p")), "likes");
}

}  // namespace
