// Tests for symbol interning and the indexed triple store.
#include <gtest/gtest.h>

#include "src/common/check.hpp"
#include "src/kg/store.hpp"

namespace {

using namespace kinet::kg;  // NOLINT

TEST(SymbolTable, InternIsIdempotent) {
    SymbolTable syms;
    const SymbolId a = syms.intern("alpha");
    const SymbolId b = syms.intern("beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(syms.intern("alpha"), a);
    EXPECT_EQ(syms.name(a), "alpha");
    EXPECT_EQ(syms.size(), 2U);
}

TEST(SymbolTable, FindReturnsInvalidForUnknown) {
    SymbolTable syms;
    EXPECT_EQ(syms.find("missing"), kInvalidSymbol);
}

TEST(SymbolTable, NumericLiteralsCarryValues) {
    SymbolTable syms;
    const SymbolId n = syms.intern_number(42.0);
    EXPECT_EQ(syms.intern_number(42.0), n);  // same value, same symbol
    ASSERT_TRUE(syms.numeric_value(n).has_value());
    EXPECT_DOUBLE_EQ(*syms.numeric_value(n), 42.0);
    EXPECT_FALSE(syms.numeric_value(syms.intern("text")).has_value());
}

TEST(TripleStore, AddDeduplicates) {
    TripleStore store;
    EXPECT_TRUE(store.add("a", "p", "b"));
    EXPECT_FALSE(store.add("a", "p", "b"));
    EXPECT_EQ(store.size(), 1U);
    EXPECT_TRUE(store.contains("a", "p", "b"));
    EXPECT_FALSE(store.contains("a", "p", "c"));
}

TEST(TripleStore, MatchByEachPosition) {
    TripleStore store;
    store.add("a", "p", "b");
    store.add("a", "q", "c");
    store.add("d", "p", "b");

    const SymbolId a = store.symbols().find("a");
    const SymbolId p = store.symbols().find("p");
    const SymbolId b = store.symbols().find("b");

    EXPECT_EQ(store.match(TriplePattern{a, std::nullopt, std::nullopt}).size(), 2U);
    EXPECT_EQ(store.match(TriplePattern{std::nullopt, p, std::nullopt}).size(), 2U);
    EXPECT_EQ(store.match(TriplePattern{std::nullopt, std::nullopt, b}).size(), 2U);
    EXPECT_EQ(store.match(TriplePattern{a, p, b}).size(), 1U);
    EXPECT_EQ(store.match(TriplePattern{}).size(), 3U);  // full scan
}

TEST(TripleStore, ObjectsAndSubjects) {
    TripleStore store;
    store.add("event1", "hasPort", "p53");
    store.add("event1", "hasPort", "p443");
    store.add("event2", "hasPort", "p53");

    const auto objs = store.objects("event1", "hasPort");
    EXPECT_EQ(objs.size(), 2U);
    const auto subs = store.subjects("hasPort", "p53");
    EXPECT_EQ(subs.size(), 2U);
    EXPECT_TRUE(store.objects("missing", "hasPort").empty());
}

TEST(TripleStore, NumericObjects) {
    TripleStore store;
    store.add_number("cve", "minPort", 32771);
    store.add_number("cve", "maxPort", 34000);
    ASSERT_TRUE(store.number("cve", "minPort").has_value());
    EXPECT_DOUBLE_EQ(*store.number("cve", "minPort"), 32771.0);
    EXPECT_DOUBLE_EQ(*store.number("cve", "maxPort"), 34000.0);
    EXPECT_FALSE(store.number("cve", "other").has_value());
}

TEST(TripleStore, MatchWithUnknownConstantIsEmpty) {
    TripleStore store;
    store.add("a", "p", "b");
    EXPECT_FALSE(store.contains("zz", "p", "b"));
    EXPECT_TRUE(store.objects("zz", "p").empty());
}

TEST(TripleStore, ScalesToManyTriples) {
    TripleStore store;
    for (int i = 0; i < 2000; ++i) {
        store.add("s" + std::to_string(i % 50), "p" + std::to_string(i % 7),
                  "o" + std::to_string(i));
    }
    EXPECT_EQ(store.size(), 2000U);
    const SymbolId p0 = store.symbols().find("p0");
    const auto hits = store.match(TriplePattern{std::nullopt, p0, std::nullopt});
    EXPECT_GT(hits.size(), 200U);
    for (const auto& t : hits) {
        EXPECT_EQ(t.p, p0);
    }
}

}  // namespace
