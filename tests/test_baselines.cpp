// Smoke + behaviour tests for the five baseline synthesizers.
#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/cond_tabular_gan.hpp"
#include "src/common/check.hpp"
#include "src/baselines/pategan.hpp"
#include "src/baselines/tablegan.hpp"
#include "src/baselines/tvae.hpp"
#include "src/netsim/lab_simulator.hpp"

namespace {

using namespace kinet::baselines;  // NOLINT
using kinet::data::Table;
using kinet::gan::Synthesizer;

Table small_lab(std::size_t rows = 700) {
    kinet::netsim::LabSimOptions opts;
    opts.records = rows;
    opts.seed = 21;
    return kinet::netsim::LabTrafficSimulator(opts).generate();
}

void check_fit_sample(Synthesizer& model, const Table& real, const std::string& expected_name) {
    EXPECT_EQ(model.name(), expected_name);
    model.fit(real);
    EXPECT_FALSE(model.report().generator_loss.empty());
    const Table synth = model.sample(150);
    EXPECT_EQ(synth.rows(), 150U);
    EXPECT_EQ(synth.cols(), real.cols());
    for (std::size_t c = 0; c < synth.cols(); ++c) {
        for (std::size_t r = 0; r < synth.rows(); ++r) {
            EXPECT_TRUE(std::isfinite(synth.value(r, c)));
            if (synth.meta(c).is_categorical()) {
                EXPECT_LT(synth.category_at(r, c), synth.meta(c).categories.size());
            }
        }
    }
}

CondTabularGanOptions tiny_gan_options() {
    CondTabularGanOptions opts;
    opts.gan.epochs = 8;
    opts.gan.hidden_dim = 40;
    opts.gan.noise_dim = 20;
    opts.gan.batch_size = 64;
    opts.transformer.max_modes = 3;
    return opts;
}

TEST(Baselines, CtGanFitsAndSamples) {
    const Table real = small_lab();
    CtGan model(kinet::netsim::lab_conditional_columns(), tiny_gan_options());
    check_fit_sample(model, real, "CTGAN");
}

TEST(Baselines, OctGanUsesOdeBlocksAndTrains) {
    const Table real = small_lab(500);
    auto opts = tiny_gan_options();
    opts.gan.epochs = 5;
    opts.ode_steps = 2;
    OctGan model(kinet::netsim::lab_conditional_columns(), opts);
    check_fit_sample(model, real, "OCTGAN");
}

TEST(Baselines, TvaeFitsAndSamples) {
    const Table real = small_lab();
    TvaeOptions opts;
    opts.epochs = 10;
    opts.hidden_dim = 48;
    opts.latent_dim = 16;
    opts.transformer.max_modes = 3;
    Tvae model(opts);
    check_fit_sample(model, real, "TVAE");
}

TEST(Baselines, TvaeLossDecreases) {
    const Table real = small_lab(600);
    TvaeOptions opts;
    opts.epochs = 15;
    opts.transformer.max_modes = 3;
    Tvae model(opts);
    model.fit(real);
    const auto& losses = model.report().generator_loss;
    ASSERT_GE(losses.size(), 10U);
    EXPECT_LT(losses.back(), losses.front());
}

TEST(Baselines, TableGanFitsAndSamples) {
    const Table real = small_lab();
    TableGanOptions opts;
    opts.gan.epochs = 8;
    opts.gan.hidden_dim = 40;
    opts.label_column = kinet::netsim::lab_label_column();
    TableGan model(opts);
    check_fit_sample(model, real, "TABLEGAN");
}

TEST(Baselines, TableGanRejectsContinuousLabelColumn) {
    const Table real = small_lab(100);
    TableGanOptions opts;
    opts.label_column = 6;  // pkt_count: continuous
    TableGan model(opts);
    EXPECT_THROW(model.fit(real), kinet::Error);
}

TEST(Baselines, PateGanFitsAndSamples) {
    const Table real = small_lab();
    PateGanOptions opts;
    opts.gan.epochs = 6;
    opts.gan.hidden_dim = 40;
    opts.teachers = 3;
    opts.transformer.max_modes = 3;
    PateGan model(opts);
    check_fit_sample(model, real, "PATEGAN");
}

TEST(Baselines, PateGanRequiresAtLeastTwoTeachers) {
    PateGanOptions opts;
    opts.teachers = 1;
    EXPECT_THROW(PateGan{opts}, kinet::Error);
}

TEST(Baselines, SampleBeforeFitThrowsEverywhere) {
    CtGan ctgan(kinet::netsim::lab_conditional_columns(), tiny_gan_options());
    EXPECT_THROW((void)ctgan.sample(5), kinet::Error);
    Tvae tvae;
    EXPECT_THROW((void)tvae.sample(5), kinet::Error);
    TableGanOptions tg_opts;
    tg_opts.label_column = kinet::netsim::lab_label_column();
    TableGan tablegan(tg_opts);
    EXPECT_THROW((void)tablegan.sample(5), kinet::Error);
    PateGan pategan;
    EXPECT_THROW((void)pategan.sample(5), kinet::Error);
}

TEST(Baselines, CtGanDiscriminatorScoresAreProbabilities) {
    const Table real = small_lab(300);
    auto opts = tiny_gan_options();
    opts.gan.epochs = 4;
    CtGan model(kinet::netsim::lab_conditional_columns(), opts);
    model.fit(real);
    const auto scores = model.discriminator_scores(real);
    EXPECT_EQ(scores.size(), real.rows());
    for (double s : scores) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
    }
}

// Every synthesizer draws sane category marginals: sampled distributions put
// most mass on categories that exist in the real data.
TEST(Baselines, SampledProtocolsExistInRealData) {
    const Table real = small_lab(600);
    std::vector<std::unique_ptr<Synthesizer>> models;
    models.push_back(
        std::make_unique<CtGan>(kinet::netsim::lab_conditional_columns(), tiny_gan_options()));
    TvaeOptions tv;
    tv.epochs = 8;
    tv.transformer.max_modes = 3;
    models.push_back(std::make_unique<Tvae>(tv));

    const auto real_counts = real.category_counts(real.column_index("protocol"));
    for (auto& model : models) {
        model->fit(real);
        const Table synth = model->sample(200);
        const auto synth_counts = synth.category_counts(synth.column_index("protocol"));
        std::size_t mass_on_real = 0;
        std::size_t total = 0;
        for (std::size_t k = 0; k < synth_counts.size(); ++k) {
            total += synth_counts[k];
            if (real_counts[k] > 0) {
                mass_on_real += synth_counts[k];
            }
        }
        EXPECT_GT(static_cast<double>(mass_on_real) / total, 0.8) << model->name();
    }
}

}  // namespace
